"""The vectorized replay core: three tiers of fast path behind ``serve()``.

Replaying a day of sporadic traffic is dominated by re-simulating the same
handful of ``(model size, batch)`` combinations thousands of times.  This
module collapses that cost in three tiers, all behind the unchanged
:meth:`~repro.serving.server.InferenceServer.serve` surface:

**Tier A -- whole-execution outcome memoisation** (:class:`ReplayOutcomeCache`,
:class:`OutcomeCacheMixin`).  A backend execution is keyed on ``(model size,
batch fingerprint)`` plus -- for the FaaS backend -- the *cold/warm claim
pattern* the execution observed on the warm pool.  A hit replays the
recorded latency, cost, billing and channel-stats deltas translated to the
new ``at_time`` instead of re-simulating the engine.  Two rules keep the
cache honest:

* **seen-once rule**: nothing is recorded from the *first* real execution of
  a key, so one-time setup (engine build, partition planning, function
  creation) never leaks into a replayed delta;
* **claim replay**: before a cached FaaS outcome is accepted, its recorded
  claim/free events are replayed against a *copy* of the live warm pools at
  the translated times.  If any claim would resolve cold where the recording
  was warm (or vice versa) the entry is rejected -- cold and warm executions
  can never shadow each other -- and the pool copies are only committed on a
  full match.

Time translation is *not* bit-exact (absolute-time float arithmetic drifts
in the last bits, ~1e-12 relative), so the cache is **opt-in**
(``ServingConfig(outcome_cache=True)``) and every historical fingerprint is
produced with it off.  What *is* bit-exact -- and locked by tests -- is the
equivalence of the tiers below against the exact event loop **under the same
cache setting**.

**Tier B -- columnar event core** (:func:`columnar_serve`).  When no
policies, no chaos and no admission bound are configured, the heap/deque
event loop degenerates to "execute in arrival order"; this tier replaces it
with numpy arrival columns, a flat execution loop and array aggregation
(:func:`peak_overlap_arrays`, chunked exact cost folds), producing a
:class:`~repro.serving.server.ServingReport` whose ``summary()`` is
bit-identical to the exact loop's.  Per-query :class:`QueryRecord` objects
materialise lazily (:class:`LazyRecordList`) so million-query replays never
build a million dataclasses unless someone iterates them.

**Tier C -- fluid mode** (:func:`fluid_serve`, opt-in via
``ServingConfig(replay_mode="fluid")``).  For campaign cells that only need
aggregates: a few real probe executions per key establish cold and warm
templates, arrival gaps classify the remaining queries against the pool
keepalive, and everything else is synthesized analytically.  Summaries are
tagged ``"replay_mode": "fluid"`` so an approximate fingerprint can never be
mistaken for an exact one.

Chaos is the hard boundary: fault injection is time-positional, so a
chaos-configured serve never activates the cache and always runs the exact
event loop.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..cloud.billing import CostReport, UsageRecord
from ..cloud.faas import InvocationRecord, claim_from_pool
from ..comm import ChannelStats

__all__ = [
    "CHANNEL_FIELDS",
    "batch_fingerprint",
    "OutcomeEntry",
    "ReplayOutcomeCache",
    "OutcomeCacheMixin",
    "ColumnarSink",
    "ReportColumns",
    "LazyRecordList",
    "peak_overlap_arrays",
    "columnar_serve",
    "fluid_serve",
]

#: stable field order of :class:`ChannelStats` (all-integer counters), used
#: to vectorize accumulation: ``sum of vecs`` is exactly ``accumulate`` folds.
# detlint: allow[DET004] dataclass field order is declaration order, deterministic across runs
CHANNEL_FIELDS: Tuple[str, ...] = tuple(vars(ChannelStats()).keys())

#: how many real executions fluid mode spends per key before synthesizing.
_FLUID_PROBE_LIMIT = 6


def batch_fingerprint(batch: sparse.spmatrix) -> bytes:
    """Content digest of a sparse input batch (shape + CSR structure + data)."""
    csr = batch.tocsr()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(csr.shape).encode())
    digest.update(np.ascontiguousarray(csr.indptr).tobytes())
    digest.update(np.ascontiguousarray(csr.indices).tobytes())
    digest.update(np.ascontiguousarray(csr.data).tobytes())
    return digest.digest()


def _channel_vec(stats: Optional[ChannelStats]) -> Optional[np.ndarray]:
    if stats is None:
        return None
    return np.asarray([getattr(stats, name) for name in CHANNEL_FIELDS], dtype=np.int64)


def _stats_from_vec(vec: np.ndarray) -> ChannelStats:
    stats = ChannelStats()
    for name, value in zip(CHANNEL_FIELDS, vec.tolist()):
        setattr(stats, name, int(value))
    return stats


class _CostBlock:
    """One contiguous run of billing records, pre-split per aggregation key.

    ``cost`` is the record costs in ledger order; ``svc_split``/``op_split``
    map each service / ``"service:operation"`` key to that key's cost
    *subsequence* (order preserved), so the sequential per-key folds of
    :meth:`BillingLedger.report` can be reproduced exactly from blocks.
    """

    __slots__ = ("cost", "svc_split", "op_split")

    def __init__(self, records: Sequence[UsageRecord]):
        self.cost = np.fromiter(
            (record.cost for record in records), np.float64, count=len(records)
        )
        svc_idx: Dict[str, List[int]] = {}
        op_idx: Dict[str, List[int]] = {}
        for index, record in enumerate(records):
            svc_idx.setdefault(record.service, []).append(index)
            op_idx.setdefault(f"{record.service}:{record.operation}", []).append(index)
        self.svc_split = {
            key: self.cost[np.asarray(indices, dtype=np.intp)]
            for key, indices in svc_idx.items()
        }
        self.op_split = {
            key: self.cost[np.asarray(indices, dtype=np.intp)]
            for key, indices in op_idx.items()
        }


def _fold_flush(acc: float, arrays: List[np.ndarray]) -> float:
    """Exact sequential left fold of ``arrays`` seeded with carry ``acc``.

    The carry is *prepended* into the buffer before ``np.add.accumulate``
    (which scans strictly left-to-right); ``acc + cumsum`` would reassociate
    the first addition and break bit-parity with the pure-Python fold.
    """
    cat = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
    buf = np.empty(cat.size + 1, dtype=np.float64)
    buf[0] = acc
    buf[1:] = cat
    np.add.accumulate(buf, out=buf)
    return float(buf[-1])


def _fold_sequence(chunks: List[np.ndarray], chunk_limit: int = 1 << 20) -> float:
    """Fold many arrays as one sequence, bit-identical to ``sum`` in a loop."""
    acc = 0.0
    pending: List[np.ndarray] = []
    size = 0
    for array in chunks:
        if not array.size:
            continue
        pending.append(array)
        size += array.size
        if size >= chunk_limit:
            acc = _fold_flush(acc, pending)
            pending = []
            size = 0
    if pending:
        acc = _fold_flush(acc, pending)
    return acc


class OutcomeEntry:
    """One recorded backend execution, re-playable at any ``at_time``.

    Everything time-like is stored relative to the recording's ``at_time``;
    a replay adds the new ``at_time`` back (the same float operation the
    simulator itself performs, so replays agree with each other bit-for-bit).
    """

    __slots__ = (
        "latency_seconds",
        "cost",
        "cold_starts",
        "warm_starts",
        "channel_stats",
        "channel_vec",
        "result",
        "usage_records",
        "usage_ts_rel",
        "pool_events",
        "pool_fns",
        "inv_records",
        "inv_rel_started",
        "inv_rel_finished",
        "inv_id_offsets",
        "inv_count",
        "_cost_block",
    )

    @classmethod
    def capture(
        cls,
        cloud: Any,
        faas: Any,
        ledger_start: int,
        records_start: int,
        id_start: int,
        events: Optional[List[Tuple]],
        at_time: float,
        outcome: Any,
    ) -> "OutcomeEntry":
        entry = cls()
        entry.latency_seconds = outcome.latency_seconds
        entry.cost = outcome.cost
        entry.cold_starts = outcome.cold_starts
        entry.warm_starts = outcome.warm_starts
        entry.channel_stats = outcome.channel_stats
        entry.channel_vec = _channel_vec(outcome.channel_stats)
        entry.result = outcome.result
        entry._cost_block = None

        if cloud is not None:
            usage = cloud.ledger._records[ledger_start:]
        else:
            usage = []
        entry.usage_records = usage
        entry.usage_ts_rel = np.fromiter(
            (record.timestamp - at_time for record in usage), np.float64, count=len(usage)
        )

        if faas is not None:
            invocations = faas.invocation_records[records_start:]
            entry.inv_records = invocations
            entry.inv_count = len(invocations)
            entry.inv_rel_started = np.fromiter(
                (record.started_at - at_time for record in invocations),
                np.float64,
                count=len(invocations),
            )
            entry.inv_rel_finished = np.fromiter(
                (record.finished_at - at_time for record in invocations),
                np.float64,
                count=len(invocations),
            )
            entry.inv_id_offsets = [
                record.invocation_id - id_start for record in invocations
            ]
            pool_events: List[Tuple] = []
            fns = set()
            for event in events or ():
                if event[0] == "claim":
                    _, name, request_time, cold = event
                    pool_events.append(("claim", name, request_time - at_time, cold))
                else:
                    _, name, freed_at = event
                    pool_events.append(("free", name, freed_at - at_time))
                fns.add(event[1])
            entry.pool_events = pool_events
            entry.pool_fns = tuple(fns)
        else:
            entry.inv_records = []
            entry.inv_count = 0
            entry.inv_rel_started = np.empty(0)
            entry.inv_rel_finished = np.empty(0)
            entry.inv_id_offsets = []
            entry.pool_events = []
            entry.pool_fns = ()
        return entry

    def cost_block(self) -> _CostBlock:
        if self._cost_block is None:
            self._cost_block = _CostBlock(self.usage_records)
        return self._cost_block

    def outcome(self) -> Any:
        """The replayed :class:`QueryOutcome` (shares the recorded result
        and channel-stats objects; both are only ever read downstream)."""
        from .backends import QueryOutcome

        return QueryOutcome(
            latency_seconds=self.latency_seconds,
            cost=self.cost,
            cold_starts=self.cold_starts,
            warm_starts=self.warm_starts,
            channel_stats=self.channel_stats,
            result=self.result,
        )

    def materialise(self, cloud: Any, faas: Any, at_time: float) -> None:
        """Append the translated billing/invocation records for one replay.

        This is the exact-loop hit path: the ledger and invocation history
        must look as if the execution really ran at ``at_time``, so scoped
        ``report_since`` folds and ``worker_intervals`` stay exact.
        """
        if cloud is not None and self.usage_records:
            records = cloud.ledger._records
            for record, rel in zip(self.usage_records, self.usage_ts_rel.tolist()):
                records.append(
                    UsageRecord(
                        service=record.service,
                        operation=record.operation,
                        resource=record.resource,
                        quantity=record.quantity,
                        cost=record.cost,
                        timestamp=at_time + rel,
                    )
                )
        if faas is not None and self.inv_count:
            base = faas._next_invocation_id
            started = self.inv_rel_started.tolist()
            finished = self.inv_rel_finished.tolist()
            for index, record in enumerate(self.inv_records):
                faas.invocation_records.append(
                    InvocationRecord(
                        function_name=record.function_name,
                        invocation_id=base + self.inv_id_offsets[index],
                        started_at=at_time + started[index],
                        finished_at=at_time + finished[index],
                        runtime_seconds=record.runtime_seconds,
                        memory_mb=record.memory_mb,
                        cold=record.cold,
                        gb_seconds=record.gb_seconds,
                        cost=record.cost,
                        failed_reason=record.failed_reason,
                    )
                )
            faas._next_invocation_id = base + self.inv_count


class ReplayOutcomeCache:
    """Keyed store of :class:`OutcomeEntry` with claim-pattern matching.

    Keys are ``(neurons, samples, batch digest)``.  Several entries can live
    under one key -- one per observed cold/warm claim pattern -- in MRU
    order.  ``claims=True`` (the FaaS backend) validates each entry against
    the live warm pools before accepting it; claims-free backends replay the
    most recent entry unconditionally (their outcomes are deterministic per
    key up to time translation).
    """

    def __init__(self, claims: bool = False, max_entries_per_key: int = 8):
        self.claims = claims
        self._max_entries = max_entries_per_key
        self._entries: Dict[Tuple, List[OutcomeEntry]] = {}
        self._seen: Dict[Tuple, int] = {}
        self._digests: Dict[Tuple[int, int], bytes] = {}

    # -- keying ---------------------------------------------------------------

    def canonical_digest(self, neurons: int, samples: int, batch: sparse.spmatrix) -> bytes:
        """Digest of the factory-canonical batch for ``(neurons, samples)``.

        The factory caches one batch object per pair, so the digest can be
        memoised on the pair; ad-hoc batches (coalesced merges) must be
        hashed fresh by the caller instead.
        """
        key = (neurons, samples)
        digest = self._digests.get(key)
        if digest is None:
            digest = batch_fingerprint(batch)
            self._digests[key] = digest
        return digest

    def entries_for(self, key: Tuple) -> Sequence[OutcomeEntry]:
        return tuple(self._entries.get(key, ()))

    # -- replay ---------------------------------------------------------------

    def lookup(
        self, key: Tuple, at_time: float, faas: Any
    ) -> Optional[Tuple[OutcomeEntry, Optional[Dict[str, List[float]]]]]:
        """Find an entry whose recorded claim pattern reproduces at ``at_time``.

        Claims are replayed on *copies* of the warm pools; the caller commits
        them via :meth:`commit_pools` only after accepting the hit, so a
        rejected entry's evictions never leak into the live platform.
        """
        bucket = self._entries.get(key)
        if not bucket:
            return None
        if faas is None or not self.claims:
            return bucket[0], None
        keepalive = faas.warm_keepalive_seconds
        live = faas._warm_environments
        for index, entry in enumerate(bucket):
            pools = {name: list(live.get(name, ())) for name in entry.pool_fns}
            matched = True
            for event in entry.pool_events:
                if event[0] == "claim":
                    _, name, rel, expected_cold = event
                    claimed_warm = claim_from_pool(pools[name], at_time + rel, keepalive)
                    if claimed_warm != (not expected_cold):
                        matched = False
                        break
                else:
                    pools[event[1]].append(at_time + event[2])
            if matched:
                if index:
                    bucket.insert(0, bucket.pop(index))
                return entry, pools
        return None

    @staticmethod
    def commit_pools(faas: Any, pools: Dict[str, List[float]]) -> None:
        for name, pool in pools.items():
            faas._warm_environments[name] = pool

    # -- recording ------------------------------------------------------------

    def begin_capture(self, cloud: Any, faas: Any) -> Tuple:
        ledger_start = len(cloud.ledger._records) if cloud is not None else 0
        if faas is not None:
            previous_log = faas.replay_log
            faas.replay_log = []
            records_start = len(faas.invocation_records)
            id_start = faas._next_invocation_id
        else:
            previous_log = None
            records_start = 0
            id_start = 0
        return (cloud, faas, ledger_start, records_start, id_start, previous_log)

    @staticmethod
    def abort_capture(token: Tuple) -> None:
        _, faas, _, _, _, previous_log = token
        if faas is not None:
            faas.replay_log = previous_log

    def end_capture(
        self,
        token: Tuple,
        key: Tuple,
        at_time: float,
        outcome: Any,
        sink: Optional["ColumnarSink"],
    ) -> None:
        cloud, faas, ledger_start, records_start, id_start, previous_log = token
        events = None
        if faas is not None:
            events = faas.replay_log
            faas.replay_log = previous_log
        if sink is not None:
            if cloud is not None:
                sink.add_ledger_slice(cloud.ledger._records, ledger_start)
            if outcome.channel_stats is not None:
                sink.miss_channel.accumulate(outcome.channel_stats)
        seen = self._seen.get(key, 0)
        self._seen[key] = seen + 1
        if seen < 1:
            # Seen-once rule: the first real execution of a key pays one-time
            # setup (engine build, planning, function creation) whose deltas
            # must never be replayed as marginal per-query cost.
            return
        entry = OutcomeEntry.capture(
            cloud, faas, ledger_start, records_start, id_start, events, at_time, outcome
        )
        bucket = self._entries.setdefault(key, [])
        bucket.insert(0, entry)
        del bucket[self._max_entries :]


class OutcomeCacheMixin:
    """Grafts Tier-A outcome memoisation onto a :class:`ServingBackend`.

    Concrete backends rename their substrate call to ``_execute_real``; the
    mixin's ``_execute`` consults the cache first.  ``cache_claims`` marks
    backends whose cold/warm behaviour depends on live platform state (the
    FaaS warm pool); claims-free backends replay unconditionally.
    """

    supports_outcome_cache = True
    cache_claims = False

    outcome_cache: Optional[ReplayOutcomeCache] = None
    _cache_active = False
    _cache_sink: Optional["ColumnarSink"] = None

    def set_outcome_caching(self, enabled: bool) -> None:
        if enabled and self.outcome_cache is None:
            self.outcome_cache = ReplayOutcomeCache(claims=self.cache_claims)
        self._cache_active = bool(enabled)
        if not enabled:
            self._cache_sink = None

    # -- wiring helpers -------------------------------------------------------

    def _cache_cloud(self) -> Any:
        return getattr(self, "cloud", None)

    def _cache_faas(self) -> Any:
        if not self.cache_claims:
            return None
        cloud = self._cache_cloud()
        return cloud.faas if cloud is not None else None

    def _cache_key(self, query: Any, batch: sparse.spmatrix) -> Tuple:
        samples = batch.shape[1]
        cache = self.outcome_cache
        canonical = self.factory._batches.get((query.neurons, samples))
        if canonical is batch:
            digest = cache.canonical_digest(query.neurons, samples, batch)
        else:
            digest = batch_fingerprint(batch)
        return (query.neurons, samples, digest)

    def _on_cached_outcome(self, outcome: Any, at_time: float) -> None:
        """Hook for per-hit backend bookkeeping (e.g. interval tracking)."""

    # -- the cached execution path -------------------------------------------

    def _execute(self, query, model, batch, at_time):
        if not self._cache_active:
            return self._execute_real(query, model, batch, at_time)
        cache = self.outcome_cache
        faas = self._cache_faas()
        key = self._cache_key(query, batch)
        hit = cache.lookup(key, at_time, faas)
        if hit is not None:
            entry, pools = hit
            if pools is not None:
                cache.commit_pools(faas, pools)
            sink = self._cache_sink
            if sink is not None:
                # Columnar mode: stream the delta; skip materialising
                # per-record ledger objects (1M queries would mean ~3e8 of
                # them).  Invocation ids still advance for consistency.
                sink.on_hit(entry, at_time)
                if faas is not None and entry.inv_count:
                    faas._next_invocation_id += entry.inv_count
            else:
                entry.materialise(self._cache_cloud(), faas, at_time)
            outcome = entry.outcome()
            self._on_cached_outcome(outcome, at_time)
            return outcome
        token = cache.begin_capture(self._cache_cloud(), faas)
        try:
            outcome = self._execute_real(query, model, batch, at_time)
        except BaseException:
            cache.abort_capture(token)
            raise
        cache.end_capture(token, key, at_time, outcome, self._cache_sink)
        return outcome


class ColumnarSink:
    """Collects cost/channel/interval deltas during a columnar serve.

    Hits contribute their entry's shared arrays (no per-record objects);
    misses contribute the ledger slice they really appended.  The stream is
    folded into a :class:`CostReport` bit-identical to the exact loop's
    scoped ``report_since`` fold over the same record sequence.
    """

    def __init__(self) -> None:
        self.blocks: List[_CostBlock] = []
        self.record_count = 0
        #: id(entry) -> [entry, hit count, at_times of hits]
        self.hits: Dict[int, List] = {}
        self.miss_channel = ChannelStats()

    def add_ledger_slice(self, records: List[UsageRecord], start: int) -> None:
        tail = records[start:]
        if tail:
            block = _CostBlock(tail)
            self.blocks.append(block)
            self.record_count += len(tail)

    def on_hit(self, entry: OutcomeEntry, at_time: float) -> None:
        block = entry.cost_block()
        if block.cost.size:
            self.blocks.append(block)
            self.record_count += block.cost.size
        slot = self.hits.get(id(entry))
        if slot is None:
            self.hits[id(entry)] = slot = [entry, 0, []]
        slot[1] += 1
        slot[2].append(at_time)

    def cost_report(self) -> CostReport:
        total_chunks: List[np.ndarray] = []
        svc_chunks: Dict[str, List[np.ndarray]] = {}
        op_chunks: Dict[str, List[np.ndarray]] = {}
        for block in self.blocks:
            total_chunks.append(block.cost)
            for key, values in block.svc_split.items():
                svc_chunks.setdefault(key, []).append(values)
            for key, values in block.op_split.items():
                op_chunks.setdefault(key, []).append(values)
        return CostReport(
            total=_fold_sequence(total_chunks),
            by_service={key: _fold_sequence(v) for key, v in svc_chunks.items()},
            by_operation={key: _fold_sequence(v) for key, v in op_chunks.items()},
            record_count=self.record_count,
        )

    def channel_stats(self) -> ChannelStats:
        vec = _channel_vec(self.miss_channel)
        for entry, count, _ in self.hits.values():
            if entry.channel_vec is not None:
                vec = vec + entry.channel_vec * count
        return _stats_from_vec(vec)

    def hit_interval_arrays(self) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Worker intervals of replayed hits, translated per hit time."""
        starts: List[np.ndarray] = []
        ends: List[np.ndarray] = []
        for entry, _, times in self.hits.values():
            if entry.inv_count and times:
                at = np.asarray(times, dtype=np.float64)
                starts.append((at[:, None] + entry.inv_rel_started).ravel())
                ends.append((at[:, None] + entry.inv_rel_finished).ravel())
        return starts, ends


def peak_overlap_arrays(starts: np.ndarray, ends: np.ndarray) -> int:
    """Array form of :func:`~repro.serving.server.peak_overlap`, integer-exact.

    Same semantics: touching endpoints do not overlap (ends release before
    starts at equal times), zero-length intervals are momentarily active
    between the ends and starts at their instant.
    """
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    if starts.size == 0:
        return 0
    positive = ends > starts
    zero = ~positive
    n_pos = int(positive.sum())
    n_zero = int(zero.sum())
    times = np.concatenate([starts[positive], ends[positive], starts[zero]])
    kinds = np.concatenate(
        [
            np.ones(n_pos, dtype=np.int8),
            np.full(n_pos, -1, dtype=np.int8),
            np.zeros(n_zero, dtype=np.int8),
        ]
    )
    order = np.lexsort((kinds, times))
    kinds = kinds[order]
    running = np.cumsum(kinds, dtype=np.int64)
    peak = 0
    plus = kinds == 1
    if plus.any():
        peak = int(running[plus].max())
    if n_zero:
        times = times[order]
        zero_mask = kinds == 0
        zero_times = times[zero_mask]
        zero_running = running[zero_mask]
        _, first_index, counts = np.unique(
            zero_times, return_index=True, return_counts=True
        )
        candidates = zero_running[first_index] + counts
        peak = max(peak, int(candidates.max()))
    return peak


class ReportColumns:
    """Structured per-query columns of a fast-path serve, in record order."""

    __slots__ = (
        "query_id",
        "neurons",
        "samples",
        "arrival",
        "started",
        "finished",
        "cost",
        "cold",
        "warm",
        "tenants",
        "_latencies",
    )

    def __init__(
        self,
        query_id: np.ndarray,
        neurons: np.ndarray,
        samples: np.ndarray,
        arrival: np.ndarray,
        started: np.ndarray,
        finished: np.ndarray,
        cost: np.ndarray,
        cold: np.ndarray,
        warm: np.ndarray,
        tenants: Optional[List[Optional[str]]],
    ):
        self.query_id = query_id
        self.neurons = neurons
        self.samples = samples
        self.arrival = arrival
        self.started = started
        self.finished = finished
        self.cost = cost
        self.cold = cold
        self.warm = warm
        self.tenants = tenants
        self._latencies = None

    def __len__(self) -> int:
        return int(self.query_id.size)

    @property
    def latencies(self) -> np.ndarray:
        # finished - arrival elementwise: the same float op as the record
        # property ``latency_seconds``, so values match the exact loop's.
        if self._latencies is None:
            self._latencies = self.finished - self.arrival
        return self._latencies

    def record_at(self, index: int):
        from .server import QueryRecord

        return QueryRecord(
            query_id=int(self.query_id[index]),
            neurons=int(self.neurons[index]),
            samples=int(self.samples[index]),
            arrival_time=float(self.arrival[index]),
            started_at=float(self.started[index]),
            finished_at=float(self.finished[index]),
            cost=float(self.cost[index]),
            cold_starts=int(self.cold[index]),
            warm_starts=int(self.warm[index]),
            tenant=self.tenants[index] if self.tenants is not None else None,
        )


class LazyRecordList(Sequence):
    """Sequence of :class:`QueryRecord` materialised on first real access.

    ``len()`` (and truthiness) never materialise, so columnar aggregates can
    size themselves for free; iteration or indexing builds the record list
    once and caches it.
    """

    def __init__(self, columns: ReportColumns):
        self._columns = columns
        self._records: Optional[List] = None

    def _materialise(self) -> List:
        if self._records is None:
            columns = self._columns
            self._records = [columns.record_at(i) for i in range(len(columns))]
        return self._records

    def __len__(self) -> int:
        return len(self._columns)

    def __getitem__(self, index):
        return self._materialise()[index]

    def __iter__(self):
        return iter(self._materialise())


def _trace_columns(queries: Sequence) -> Tuple[np.ndarray, ...]:
    """Vectorized ``iter_trace`` ordering: sort by (arrival_time, query_id)."""
    n = len(queries)
    query_id = np.fromiter((q.query_id for q in queries), np.int64, count=n)
    arrival = np.fromiter((q.arrival_time for q in queries), np.float64, count=n)
    order = np.lexsort((query_id, arrival))
    neurons = np.fromiter((q.neurons for q in queries), np.int64, count=n)[order]
    samples = np.fromiter((q.samples for q in queries), np.int64, count=n)[order]
    return order, query_id[order], arrival[order], neurons, samples


def _worker_peak(
    backend, sink: Optional[ColumnarSink]
) -> int:
    starts: List[np.ndarray] = []
    ends: List[np.ndarray] = []
    intervals = backend.worker_intervals()
    if intervals:
        pairs = np.asarray(intervals, dtype=np.float64)
        starts.append(pairs[:, 0])
        ends.append(pairs[:, 1])
    if sink is not None:
        hit_starts, hit_ends = sink.hit_interval_arrays()
        starts.extend(hit_starts)
        ends.extend(hit_ends)
    if not starts:
        return 0
    return peak_overlap_arrays(np.concatenate(starts), np.concatenate(ends))


def columnar_serve(server, workload):
    """Tier-B fast path: flat arrival-order execution over numpy columns.

    Only valid when the event loop degenerates to immediate admission (no
    policies, no chaos, unbounded concurrency) -- the caller checks that.
    Returns ``None`` to signal "use the exact loop" for degenerate inputs.
    """
    from .server import ServingReport

    backend = server.backend
    config = server.config
    queries = list(workload.queries)
    n = len(queries)
    if n == 0:
        return None

    use_cache = bool(config.outcome_cache) and getattr(
        backend, "supports_outcome_cache", False
    )
    order, query_id, arrival, neurons, samples = _trace_columns(queries)
    order_list = order.tolist()
    tenants: Optional[List[Optional[str]]] = [queries[i].tenant for i in order_list]
    if not any(tenant is not None for tenant in tenants):
        tenants = None

    # Telemetry mounts exactly as in the exact loop -- tracer installed
    # before begin(), serve root span at t=0 -- and the per-query emission
    # below mirrors ``admit()``'s, so both paths produce the same span set
    # with the same sequential ids (pinned by tests/test_telemetry.py).
    tracer = None
    serve_span = None
    if config.telemetry is not None:
        tracer = config.telemetry.build_tracer()
        backend.install_telemetry(tracer)
        serve_span = tracer.begin_span(
            "serve", track="server", start=0.0, backend=backend.name
        )

    cloud = getattr(backend, "cloud", None)
    pre_begin = cloud.billing_checkpoint() if cloud is not None else None
    backend.begin(workload)
    sink: Optional[ColumnarSink] = None
    if use_cache:
        backend.set_outcome_caching(True)
        sink = ColumnarSink()
        backend._cache_sink = sink
        if cloud is not None:
            # Standing bills placed by begin() (e.g. an always-on fleet) are
            # part of the serve-scoped cost fold.
            sink.add_ledger_slice(cloud.ledger._records, pre_begin)

    arrival_list = arrival.tolist()
    costs: List[float] = []
    finishes: List[float] = []
    colds: List[int] = []
    warms: List[int] = []
    channel_total = ChannelStats()
    try:
        for i in range(n):
            query = queries[order_list[i]]
            at_time = arrival_list[i]
            outcome = backend.execute(query, at_time=at_time)
            costs.append(outcome.cost)
            finishes.append(at_time + outcome.latency_seconds)
            colds.append(outcome.cold_starts)
            warms.append(outcome.warm_starts)
            if sink is None and outcome.channel_stats is not None:
                channel_total.accumulate(outcome.channel_stats)
            if tracer is not None:
                query_span = tracer.record_span(
                    "query",
                    track="queries",
                    start=at_time,
                    end=at_time + outcome.latency_seconds,
                    parent=serve_span,
                    query_id=query.query_id,
                    neurons=query.neurons,
                    samples=query.samples,
                    outcome="completed",
                    attempts=1,
                )
                tracer.record_span(
                    "attempt",
                    track="queries",
                    start=at_time,
                    end=at_time + outcome.latency_seconds,
                    parent=query_span,
                    attempt=1,
                    cold_starts=outcome.cold_starts,
                    warm_starts=outcome.warm_starts,
                )
        finish_report = backend.finish()
        cost_report = sink.cost_report() if sink is not None else finish_report
        peak_workers = _worker_peak(backend, sink)
        stats = sink.channel_stats() if sink is not None else channel_total
    finally:
        if use_cache:
            backend.set_outcome_caching(False)

    finished = np.asarray(finishes, dtype=np.float64)
    if tracer is not None:
        # Same float op as the exact loop's serve end: max over finished_at.
        tracer.end_span(serve_span, float(finished.max()) if finished.size else 0.0)
        backend.clear_telemetry()
    columns = ReportColumns(
        query_id=query_id,
        neurons=neurons,
        samples=samples,
        arrival=arrival,
        started=arrival,
        finished=finished,
        cost=np.asarray(costs, dtype=np.float64),
        cold=np.asarray(colds, dtype=np.int64),
        warm=np.asarray(warms, dtype=np.int64),
        tenants=tenants,
    )
    return ServingReport(
        backend=backend.name,
        config=config,
        horizon_seconds=workload.horizon_seconds,
        records=LazyRecordList(columns),
        cost=cost_report,
        peak_concurrent_queries=peak_overlap_arrays(arrival, finished),
        peak_concurrent_workers=peak_workers,
        channel_stats=stats,
        fault_counts={},
        columns=columns,
        replay_mode="columnar",
        telemetry=tracer,
    )


def fluid_serve(server, workload):
    """Tier-C analytic mode: probe each key, synthesize the rest.

    A few real executions per ``(neurons, samples)`` key establish cold and
    warm outcome templates; the remaining queries are classified by their
    idle gap against the warm-pool keepalive and synthesized from the
    matching template without touching the platform.  Aggregates are
    approximate by construction and the report is tagged
    ``replay_mode="fluid"``.  Returns ``None`` when the backend cannot
    memoise (fall back to the exact loop).
    """
    from .server import ServingReport

    backend = server.backend
    config = server.config
    if not getattr(backend, "supports_outcome_cache", False):
        return None
    queries = list(workload.queries)
    n = len(queries)
    if n == 0:
        return None

    order, query_id, arrival, neurons, samples = _trace_columns(queries)
    order_list = order.tolist()
    tenants: Optional[List[Optional[str]]] = [queries[i].tenant for i in order_list]
    if not any(tenant is not None for tenant in tenants):
        tenants = None

    cloud = getattr(backend, "cloud", None)
    pre_begin = cloud.billing_checkpoint() if cloud is not None else None
    backend.begin(workload)
    backend.set_outcome_caching(True)
    sink = ColumnarSink()
    backend._cache_sink = sink
    if cloud is not None:
        sink.add_ledger_slice(cloud.ledger._records, pre_begin)
    cache = backend.outcome_cache
    faas = backend._cache_faas()
    keepalive = faas.warm_keepalive_seconds if faas is not None else None

    # Classify each query cold/warm analytically: the first arrival of a key
    # is cold; later arrivals are cold when the idle gap since the key's
    # previous arrival exceeds the keepalive (fluid ignores cross-key pool
    # sharing -- that is part of the approximation).
    packed = neurons * np.int64(1 << 32) + samples
    _, inverse = np.unique(packed, return_inverse=True)
    expect_cold = np.zeros(n, dtype=bool)
    for group in range(int(inverse.max()) + 1):
        members = np.flatnonzero(inverse == group)
        expect_cold[members[0]] = True
        if keepalive is not None and members.size > 1:
            gaps = np.diff(arrival[members])
            expect_cold[members[1 :][gaps > keepalive]] = True

    arrival_list = arrival.tolist()
    inverse_list = inverse.tolist()
    expect_cold_list = expect_cold.tolist()
    costs: List[float] = []
    finishes: List[float] = []
    colds: List[int] = []
    warms: List[int] = []
    #: per key group: probe count, cold/warm templates, resolved cache key
    state: Dict[int, Dict[str, Any]] = {}
    #: id(entry) -> [entry, synth count, synth at_times]
    synth: Dict[int, List] = {}
    try:
        for i in range(n):
            query = queries[order_list[i]]
            at_time = arrival_list[i]
            group = inverse_list[i]
            group_state = state.get(group)
            if group_state is None:
                batch = backend.factory.batch_for(query)
                group_state = state[group] = {
                    "probes": 0,
                    "cold": None,
                    "warm": None,
                    "key": backend._cache_key(query, batch),
                }
            want = "cold" if expect_cold_list[i] else "warm"
            template = group_state[want] or group_state["warm" if want == "cold" else "cold"]
            if group_state[want] is None and group_state["probes"] < _FLUID_PROBE_LIMIT:
                template = None  # force a probe for the missing class
            if template is None:
                outcome = backend.execute(query, at_time=at_time)
                group_state["probes"] += 1
                costs.append(outcome.cost)
                finishes.append(at_time + outcome.latency_seconds)
                colds.append(outcome.cold_starts)
                warms.append(outcome.warm_starts)
                for entry in cache.entries_for(group_state["key"]):
                    kind = "cold" if entry.cold_starts > 0 else "warm"
                    if group_state[kind] is None:
                        group_state[kind] = entry
                continue
            slot = synth.get(id(template))
            if slot is None:
                synth[id(template)] = slot = [template, 0, []]
            slot[1] += 1
            slot[2].append(at_time)
            costs.append(template.cost)
            finishes.append(at_time + template.latency_seconds)
            colds.append(template.cold_starts)
            warms.append(template.warm_starts)
        backend.finish()
    finally:
        backend.set_outcome_caching(False)

    # Cost: exact fold over what really ran, plus count x template sums for
    # the synthesized remainder (grouped numpy sums; approximate).
    base = sink.cost_report()
    total = base.total
    record_count = base.record_count
    by_service = dict(base.by_service)
    by_operation = dict(base.by_operation)
    for template, count, _ in synth.values():
        block = template.cost_block()
        if not block.cost.size:
            continue
        total += float(block.cost.sum()) * count
        record_count += int(block.cost.size) * count
        for key, values in block.svc_split.items():
            by_service[key] = by_service.get(key, 0.0) + float(values.sum()) * count
        for key, values in block.op_split.items():
            by_operation[key] = by_operation.get(key, 0.0) + float(values.sum()) * count
    cost_report = CostReport(
        total=total,
        by_service=by_service,
        by_operation=by_operation,
        record_count=record_count,
    )

    # Channel stats: real probes exactly, synthesized as count x vector.
    vec = _channel_vec(sink.channel_stats())
    for template, count, _ in synth.values():
        if template.channel_vec is not None:
            vec = vec + template.channel_vec * count
    stats = _stats_from_vec(vec)

    # Worker intervals: real probes from the backend/sink, synthesized from
    # each template's invocation spans (or its latency span, claims-free).
    starts: List[np.ndarray] = []
    ends: List[np.ndarray] = []
    intervals = backend.worker_intervals()
    if intervals:
        pairs = np.asarray(intervals, dtype=np.float64)
        starts.append(pairs[:, 0])
        ends.append(pairs[:, 1])
    hit_starts, hit_ends = sink.hit_interval_arrays()
    starts.extend(hit_starts)
    ends.extend(hit_ends)
    for template, _, times in synth.values():
        if not times:
            continue
        at = np.asarray(times, dtype=np.float64)
        if template.inv_count:
            starts.append((at[:, None] + template.inv_rel_started).ravel())
            ends.append((at[:, None] + template.inv_rel_finished).ravel())
        else:
            starts.append(at)
            ends.append(at + template.latency_seconds)
    peak_workers = (
        peak_overlap_arrays(np.concatenate(starts), np.concatenate(ends))
        if starts
        else 0
    )

    finished = np.asarray(finishes, dtype=np.float64)
    columns = ReportColumns(
        query_id=query_id,
        neurons=neurons,
        samples=samples,
        arrival=arrival,
        started=arrival,
        finished=finished,
        cost=np.asarray(costs, dtype=np.float64),
        cold=np.asarray(colds, dtype=np.int64),
        warm=np.asarray(warms, dtype=np.int64),
        tenants=tenants,
    )
    return ServingReport(
        backend=backend.name,
        config=config,
        horizon_seconds=workload.horizon_seconds,
        records=LazyRecordList(columns),
        cost=cost_report,
        peak_concurrent_queries=peak_overlap_arrays(arrival, finished),
        peak_concurrent_workers=peak_workers,
        channel_stats=stats,
        fault_counts={},
        columns=columns,
        replay_mode="fluid",
    )

"""``repro-trace`` / ``python -m repro.telemetry``: render a recorded trace.

Input is a ``repro-trace-v1`` JSON file -- the ``Tracer.to_dict()`` payload
a serve writes when telemetry is enabled (see ``examples/trace_query.py``
and ``CampaignReport.export_traces``).  Output is either a Chrome
trace-event JSON file for Perfetto / ``chrome://tracing`` or a text
summary on stdout::

    repro-trace serve.json --chrome serve.trace.json
    repro-trace serve.json --top 10
    repro-trace serve.json --query 3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .export import critical_path, load_trace, render_text_summary, write_chrome_trace

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a recorded virtual-timeline trace "
        "(repro-trace-v1 JSON) as a Chrome trace or a text summary.",
    )
    parser.add_argument("trace", help="path to a recorded repro-trace-v1 JSON file")
    parser.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="write Chrome trace-event JSON to PATH (load in Perfetto)",
    )
    parser.add_argument(
        "--query",
        type=int,
        metavar="ID",
        default=None,
        help="print the critical-path breakdown of one query id",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="spans to show in the text summary (default 20)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        trace = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-trace: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2

    if args.chrome is not None:
        write_chrome_trace(trace, args.chrome)
        print(f"wrote Chrome trace to {args.chrome} ({len(trace['spans'])} spans)")
        return 0

    if args.query is not None:
        segments = critical_path(trace, args.query)
        if not segments:
            print(f"no span recorded for query {args.query}", file=sys.stderr)
            return 1
        total = segments[-1]["end"] - segments[0]["start"]
        print(f"critical path of query {args.query} ({total:.3f}s simulated):")
        for seg in segments:
            print(
                f"  {seg['duration']:10.3f}s  {seg['phase']:<10} "
                f"[{seg['start']:.3f}, {seg['end']:.3f}]"
            )
        return 0

    print(render_text_summary(trace, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())

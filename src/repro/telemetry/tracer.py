"""Virtual-timeline tracer and metrics registry.

Every timestamp recorded here is *simulated* time -- seconds on the
:class:`~repro.cloud.VirtualClock` timeline threaded through the serving
layer as ``at_time`` -- never host wall-clock.  A trace is therefore as
deterministic as the replay that produced it: the same workload, seed and
configuration yield the same span set, byte for byte, whether it was
recorded by the exact event loop or the columnar fast path.

The tracer is mounted behind the same gating pattern the chaos injector
proved out: the serving layer builds one :class:`Tracer` per serve when
``ServingConfig(telemetry=...)`` is set and installs it on the backend's
cloud environment via :class:`repro.cloud.TelemetryDomain`; every
instrumentation point in the services is a single ``if tracer is not
None`` check, so telemetry-off runs execute the exact same code -- and
produce the exact same clocks, bills and fingerprints -- as before this
package existed.

Vocabulary:

* :class:`Span` -- a named interval ``[start, end]`` on a *track* (one
  track per worker/function/channel in the Chrome export), optionally
  nested under a parent span.  Span ids are sequential, so two replays
  that emit the same spans in the same order agree on every id.
* event -- a zero-duration annotation on a track (retry, fault, channel
  op, coalescing decision).
* :class:`Counter` / :class:`Gauge` -- cumulative and instantaneous
  time-series in the :class:`MetricsRegistry` (queue depth, in-flight
  queries, warm-pool size, cumulative cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TelemetryConfig",
    "Tracer",
    "Span",
    "TraceEvent",
    "Counter",
    "Gauge",
    "MetricsRegistry",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """Opt-in telemetry switch carried by ``ServingConfig(telemetry=...)``.

    Frozen and picklable so campaign cells can carry it across process
    pools, mirroring :class:`repro.chaos.ChaosConfig`.

    ``capture_metrics``
        record counter/gauge time-series (queue depth, warm pool,
        cumulative cost) in addition to spans.
    ``capture_channel_events``
        record one instant event per cloud channel operation (queue
        send/receive, pubsub publish, object put/get, block read/write)
        on the channel's own track.  Counters are kept either way.
    """

    capture_metrics: bool = True
    capture_channel_events: bool = True

    def build_tracer(self) -> "Tracer":
        """A fresh tracer for one serve (never shared between replays)."""
        return Tracer(config=self)

    def describe(self) -> Dict[str, bool]:
        """Stable, JSON-able description (campaign axis provenance)."""
        return {
            "capture_metrics": self.capture_metrics,
            "capture_channel_events": self.capture_channel_events,
        }


@dataclass
class Span:
    """A named simulated-time interval on a track, nested under a parent."""

    span_id: int
    parent_id: Optional[int]
    name: str
    track: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }


@dataclass
class TraceEvent:
    """A zero-duration annotation (retry, fault, channel op) on a track."""

    name: str
    track: str
    t: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "track": self.track, "t": self.t, "attrs": dict(self.attrs)}


class Counter:
    """Cumulative metric: ``add`` appends ``(t, running_total)`` samples."""

    __slots__ = ("name", "total", "series")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.series: List[Tuple[float, float]] = []

    def add(self, value: float, t: float) -> None:
        self.total += value
        self.series.append((t, self.total))

    def to_dict(self) -> Dict[str, Any]:
        return {"total": self.total, "series": [list(sample) for sample in self.series]}


class Gauge:
    """Instantaneous metric: ``set`` appends ``(t, value)`` samples."""

    __slots__ = ("name", "value", "series")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.series: List[Tuple[float, float]] = []

    def set(self, value: float, t: float) -> None:
        self.value = value
        self.series.append((t, value))

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "series": [list(sample) for sample in self.series]}


class MetricsRegistry:
    """Get-or-create registry of counters and gauges.

    When disabled (``TelemetryConfig(capture_metrics=False)``) the running
    totals are still maintained -- they feed ``Tracer.summary()`` -- but no
    per-sample series are kept, bounding memory on million-query replays.
    """

    __slots__ = ("capture_series", "_counters", "_gauges")

    def __init__(self, capture_series: bool = True) -> None:
        self.capture_series = capture_series
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def add(self, name: str, value: float, t: float) -> None:
        counter = self.counter(name)
        if self.capture_series:
            counter.add(value, t)
        else:
            counter.total += value

    def sample(self, name: str, value: float, t: float) -> None:
        gauge = self.gauge(name)
        if self.capture_series:
            gauge.set(value, t)
        else:
            gauge.value = value

    def counters(self) -> List[Counter]:
        return [self._counters[name] for name in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[name] for name in sorted(self._gauges)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {c.name: c.to_dict() for c in self.counters()},
            "gauges": {g.name: g.to_dict() for g in self.gauges()},
        }


class Tracer:
    """Records simulated-time spans, events and metrics for one serve.

    Span ids are assigned sequentially in emission order; because every
    emission site runs on the deterministic replay path, two serves of the
    same workload produce identical traces -- the property
    ``tests/test_telemetry.py`` pins for the exact loop vs the columnar
    fast path.
    """

    __slots__ = ("config", "spans", "events", "metrics", "_next_span_id")

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry(capture_series=self.config.capture_metrics)
        self._next_span_id = 1

    # -- spans ----------------------------------------------------------------

    def begin_span(
        self,
        name: str,
        track: str,
        start: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span whose end is not yet known (close with ``end_span``)."""
        span = Span(
            span_id=self._next_span_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            track=track,
            start=start,
            attrs=attrs,
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def end_span(self, span: Span, end: float, **attrs: Any) -> Span:
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        return span

    def record_span(
        self,
        name: str,
        track: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record a span whose full interval is already known."""
        span = self.begin_span(name, track, start, parent=parent, **attrs)
        span.end = end
        return span

    # -- events and metrics ---------------------------------------------------

    def event(self, name: str, track: str, t: float, **attrs: Any) -> TraceEvent:
        evt = TraceEvent(name=name, track=track, t=t, attrs=attrs)
        self.events.append(evt)
        return evt

    def channel_op(
        self, service: str, operation: str, resource: str, t: float, **attrs: Any
    ) -> None:
        """One cloud channel operation: a counter bump + an instant event.

        This is the single call every ``if tracer is not None`` gate in the
        cloud services makes, so the per-service instrumentation stays a
        one-liner.
        """
        self.metrics.add(f"cloud.{service}.{operation}", 1.0, t)
        if self.config.capture_channel_events:
            self.events.append(
                TraceEvent(name=operation, track=f"{service}:{resource}", t=t, attrs=attrs)
            )

    def counter_add(self, name: str, value: float, t: float) -> None:
        self.metrics.add(name, value, t)

    def gauge_sample(self, name: str, value: float, t: float) -> None:
        self.metrics.sample(name, value, t)

    # -- views ----------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Compact, deterministic digest for ``ServingReport.summary()``.

        Counter totals are listed in sorted name order so the summary is a
        stable fingerprint payload when telemetry is enabled.
        """
        return {
            "span_count": len(self.spans),
            "event_count": len(self.events),
            "counters": {c.name: c.total for c in self.metrics.counters()},
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-able trace (the ``repro-trace`` CLI's input format)."""
        return {
            "format": "repro-trace-v1",
            "config": self.config.describe(),
            "spans": [span.to_dict() for span in self.spans],
            "events": [event.to_dict() for event in self.events],
            "metrics": self.metrics.to_dict(),
        }

"""Exporters for recorded traces: Chrome trace-event JSON, text summaries,
and per-query critical-path breakdowns.

All exporters accept either a live :class:`~repro.telemetry.Tracer` or the
plain dict produced by ``Tracer.to_dict()`` (the ``repro-trace-v1`` format
the CLI reads back from disk), so a trace can be rendered in-process right
after a serve or from a recorded artifact.

The Chrome export targets the trace-event JSON format that Perfetto and
``chrome://tracing`` load: one process (pid 1, the virtual timeline), one
thread per track, ``"X"`` complete events for spans, ``"i"`` instants for
events and ``"C"`` counter events for metric series.  Timestamps are
simulated seconds scaled to microseconds -- the viewer's clock *is* the
virtual clock.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from .tracer import Tracer

__all__ = [
    "as_trace_dict",
    "chrome_trace",
    "write_chrome_trace",
    "render_text_summary",
    "critical_path",
    "load_trace",
]

TraceLike = Union[Tracer, Dict[str, Any]]

#: simulated seconds -> Chrome trace microseconds.
_US = 1_000_000.0


def as_trace_dict(trace: TraceLike) -> Dict[str, Any]:
    """Normalise a live tracer or a recorded dict to the v1 trace dict."""
    if isinstance(trace, Tracer):
        return trace.to_dict()
    if not isinstance(trace, dict) or "spans" not in trace:
        raise ValueError(
            "expected a Tracer or a repro-trace-v1 dict with a 'spans' key; "
            f"got {type(trace).__name__}"
        )
    return trace


def load_trace(path: str) -> Dict[str, Any]:
    """Read a recorded ``repro-trace-v1`` JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return as_trace_dict(json.load(handle))


def _track_ids(trace: Dict[str, Any]) -> Dict[str, int]:
    """Deterministic track -> tid mapping (sorted names, tids from 1)."""
    tracks = {span["track"] for span in trace["spans"]}
    tracks.update(event["track"] for event in trace["events"])
    return {track: tid for tid, track in enumerate(sorted(tracks), start=1)}


def chrome_trace(trace: TraceLike) -> Dict[str, Any]:
    """The trace as a Chrome trace-event JSON object (Perfetto-loadable)."""
    trace = as_trace_dict(trace)
    tids = _track_ids(trace)
    trace_events: List[Dict[str, Any]] = []
    for track in sorted(tids):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for span in trace["spans"]:
        end = span["end"] if span["end"] is not None else span["start"]
        args = {"span_id": span["span_id"], "parent_id": span["parent_id"]}
        args.update(span["attrs"])
        trace_events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["start"] * _US,
                "dur": (end - span["start"]) * _US,
                "pid": 1,
                "tid": tids[span["track"]],
                "args": args,
            }
        )
    for event in trace["events"]:
        trace_events.append(
            {
                "name": event["name"],
                "ph": "i",
                "s": "t",
                "ts": event["t"] * _US,
                "pid": 1,
                "tid": tids[event["track"]],
                "args": dict(event["attrs"]),
            }
        )
    metrics = trace.get("metrics", {})
    for kind in ("counters", "gauges"):
        for name in sorted(metrics.get(kind, {})):
            for t, value in metrics[kind][name]["series"]:
                trace_events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": t * _US,
                        "pid": 1,
                        "args": {"value": value},
                    }
                )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: TraceLike, path: str) -> None:
    """Write the Chrome trace-event JSON next to the bench artifacts."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace), handle, indent=2)
        handle.write("\n")


def render_text_summary(trace: TraceLike, top: int = 20) -> str:
    """Top-N spans by duration plus counter totals, as aligned text."""
    trace = as_trace_dict(trace)
    spans = [span for span in trace["spans"] if span["end"] is not None]
    ranked = sorted(spans, key=lambda s: (-(s["end"] - s["start"]), s["span_id"]))[:top]
    lines = [
        f"trace: {len(trace['spans'])} spans, {len(trace['events'])} events",
        f"top {len(ranked)} spans by simulated duration:",
    ]
    for span in ranked:
        duration = span["end"] - span["start"]
        lines.append(
            f"  {duration:12.3f}s  {span['name']:<12} "
            f"[{span['start']:.3f}, {span['end']:.3f}]  track={span['track']}"
        )
    counters = trace.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("counter totals:")
        for name in sorted(counters):
            lines.append(f"  {counters[name]['total']:12.6f}  {name}")
    return "\n".join(lines)


def _query_span(trace: Dict[str, Any], query_id: int) -> Optional[Dict[str, Any]]:
    for span in trace["spans"]:
        if span["name"] == "query" and span["attrs"].get("query_id") == query_id:
            return span
    return None


def critical_path(trace: TraceLike, query_id: int) -> List[Dict[str, Any]]:
    """Per-phase breakdown of one query's simulated wall time.

    Returns ordered segments covering the query span: queueing before the
    first attempt, each attempt, and the inter-attempt gaps (retry backoff
    under chaos).  Empty if the query has no span in this trace.
    """
    trace = as_trace_dict(trace)
    query = _query_span(trace, query_id)
    if query is None or query["end"] is None:
        return []
    attempts = sorted(
        (
            span
            for span in trace["spans"]
            if span["parent_id"] == query["span_id"] and span["end"] is not None
        ),
        key=lambda s: (s["start"], s["span_id"]),
    )
    segments: List[Dict[str, Any]] = []

    def segment(phase: str, start: float, end: float, **extra: Any) -> None:
        if end > start:
            segments.append(
                {"phase": phase, "start": start, "end": end, "duration": end - start, **extra}
            )

    cursor = query["start"]
    for index, attempt in enumerate(attempts):
        segment("queue" if index == 0 else "backoff", cursor, attempt["start"])
        segment(
            attempt["name"],
            attempt["start"],
            attempt["end"],
            attempt=attempt["attrs"].get("attempt", index + 1),
        )
        cursor = attempt["end"]
    segment("tail", cursor, query["end"])
    return segments

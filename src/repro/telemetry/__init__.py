"""Virtual-timeline tracing and metrics for the serving stack.

See ``tracer`` for the recording side (spans/events/metrics on the
simulated clock, gated so telemetry-off is byte-identical), ``export``
for the Chrome trace-event / text / critical-path renderers, and ``cli``
for the ``repro-trace`` entry point.
"""

from .export import (
    as_trace_dict,
    chrome_trace,
    critical_path,
    load_trace,
    render_text_summary,
    write_chrome_trace,
)
from .tracer import (
    Counter,
    Gauge,
    MetricsRegistry,
    Span,
    TelemetryConfig,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "TelemetryConfig",
    "TraceEvent",
    "Tracer",
    "as_trace_dict",
    "chrome_trace",
    "critical_path",
    "load_trace",
    "render_text_summary",
    "write_chrome_trace",
]

"""Analytic scoring of deployment-plan candidates (no replay required).

The deployment planner (:mod:`repro.planner`) searches a (backend x policy
knob) space per scenario.  Replaying every candidate through the serving
layer would make the search cost scale with the grid; instead this module
extends the cost-model estimator family with a *candidate scorer* that
predicts each candidate's (cost over the horizon, p95 latency) pair from

* :class:`WorkloadStats` -- the arrival population (per-model-size query
  counts and mean batch sizes over the horizon), derivable from any
  :class:`~repro.workloads.SporadicWorkload` without executing a query;
* an affine :class:`QueryCostModel` per (backend, model size) -- execution
  cost and latency as ``fixed + per_sample * samples``, fitted from two
  probe executions (:func:`QueryCostModel.from_probes`), the same
  fixed-vs-marginal decomposition the paper's per-query economics
  (:func:`~repro.costmodel.recommend_coalescing`) rely on; and
* the candidate's coalescing knobs, folded in analytically: a window ``w``
  over a per-size arrival rate ``lambda`` merges an expected
  ``1 + lambda * w`` queries per execution, so fixed charges amortise while
  the batch leader's latency grows by the hold.

The scores are deliberately *pruning-grade*: deterministic, cheap and
monotone in the knobs, ranking candidates well enough to pick finalists --
the planner's final verdicts always come from real simulated replays.
Autoscaler knobs are scored as neutral (they shape queueing under load,
which the analytic stage does not model); candidates differing only in
autoscaler knobs tie analytically and are separated by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "QueryCostModel",
    "SizeStats",
    "WorkloadStats",
    "CandidateEstimate",
    "estimate_candidate",
]

#: a size's cold starts land inside the p95 tail once they exceed this share.
_COLD_TAIL_FRACTION = 0.05


@dataclass(frozen=True)
class QueryCostModel:
    """Affine per-execution cost/latency model of one (backend, model size).

    ``fixed_cost`` collects the charges paid once per execution regardless of
    batch size (invocations, coordinator, per-batch polling); the
    ``per_sample`` slopes collect the marginal work.  ``cold_penalty_seconds``
    is the extra latency of a cold execution over a warm one.
    """

    fixed_cost: float
    cost_per_sample: float
    base_latency_seconds: float
    latency_per_sample: float
    cold_penalty_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fixed_cost", "cost_per_sample", "base_latency_seconds", "latency_per_sample"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    @classmethod
    def from_probes(
        cls,
        small: Tuple[float, float, float],
        large: Tuple[float, float, float],
        cold_penalty_seconds: float = 0.0,
    ) -> "QueryCostModel":
        """Fit the affine model from two ``(samples, cost, latency)`` probes.

        Negative fitted slopes or intercepts (numerical noise, or substrates
        whose charges do not scale with samples at this granularity) are
        clamped to zero -- the model must stay monotone for the pruning
        guarantees to hold.
        """
        samples_small, cost_small, latency_small = small
        samples_large, cost_large, latency_large = large
        span = samples_large - samples_small
        if span <= 0:
            raise ValueError("probes must use two distinct, increasing sample counts")
        cost_slope = max(0.0, (cost_large - cost_small) / span)
        latency_slope = max(0.0, (latency_large - latency_small) / span)
        return cls(
            fixed_cost=max(0.0, cost_small - cost_slope * samples_small),
            cost_per_sample=cost_slope,
            base_latency_seconds=max(0.0, latency_small - latency_slope * samples_small),
            latency_per_sample=latency_slope,
            cold_penalty_seconds=max(0.0, cold_penalty_seconds),
        )

    def execution_cost(self, samples: float) -> float:
        return self.fixed_cost + self.cost_per_sample * samples

    def execution_latency(self, samples: float) -> float:
        return self.base_latency_seconds + self.latency_per_sample * samples

    def to_dict(self) -> Dict[str, float]:
        return {
            "fixed_cost": self.fixed_cost,
            "cost_per_sample": self.cost_per_sample,
            "base_latency_seconds": self.base_latency_seconds,
            "latency_per_sample": self.latency_per_sample,
            "cold_penalty_seconds": self.cold_penalty_seconds,
        }


@dataclass(frozen=True)
class SizeStats:
    """One model size's share of the arrival population."""

    neurons: int
    queries: int
    mean_samples: float

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ValueError("a populated size needs at least one query")
        if self.mean_samples <= 0:
            raise ValueError("mean_samples must be positive")


@dataclass(frozen=True)
class WorkloadStats:
    """What the analytic scorer needs to know about an arrival population."""

    horizon_seconds: float
    sizes: Tuple[SizeStats, ...]

    def __post_init__(self) -> None:
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        object.__setattr__(self, "sizes", tuple(self.sizes))

    @classmethod
    def from_workload(cls, workload) -> "WorkloadStats":
        """Derive the stats from a :class:`~repro.workloads.SporadicWorkload`."""
        sizes = []
        for neurons, queries in sorted(workload.queries_by_neurons().items()):
            total_samples = sum(query.samples for query in queries)
            sizes.append(
                SizeStats(
                    neurons=neurons,
                    queries=len(queries),
                    mean_samples=total_samples / len(queries),
                )
            )
        return cls(horizon_seconds=workload.horizon_seconds, sizes=tuple(sizes))

    @property
    def total_queries(self) -> int:
        return sum(size.queries for size in self.sizes)


@dataclass(frozen=True)
class CandidateEstimate:
    """The analytic stage's prediction for one plan candidate."""

    total_cost: float
    p95_latency_seconds: float
    expected_executions: float
    horizon_seconds: float

    @property
    def daily_cost(self) -> float:
        return self.total_cost * (86400.0 / self.horizon_seconds)

    def to_dict(self) -> Dict[str, float]:
        return {
            "total_cost": self.total_cost,
            "daily_cost": self.daily_cost,
            "p95_latency_seconds": self.p95_latency_seconds,
            "expected_executions": self.expected_executions,
        }


def estimate_candidate(
    stats: WorkloadStats,
    models: Mapping[int, QueryCostModel],
    standing_cost: float = 0.0,
    coalesce_window_seconds: float = 0.0,
    coalesce_max_hold_seconds: Optional[float] = None,
    coalesce_max_batch_queries: Optional[int] = None,
    cold_fraction: float = 0.0,
) -> CandidateEstimate:
    """Score one candidate: cost over the horizon and estimated p95 latency.

    Coalescing economics per model size: with arrival rate
    ``lambda = queries / horizon`` and an effective hold
    ``h = min(window, cap)``, an open window collects an expected
    ``B = 1 + lambda * h`` queries (capped by ``coalesce_max_batch_queries``
    and the size's population), so the size performs ``queries / B``
    executions.  Fixed charges are paid per execution, marginal charges per
    sample -- amortisation is exactly the ``B - 1`` saved fixed-cost copies
    the coalescing recommendation predicts.  Latency per size is the merged
    execution's latency plus the hold (the batch leader waits out the whole
    window); the p95 estimate is the worst size's latency, with the cold
    penalty added once the estimated cold fraction reaches the p95 tail.

    ``standing_cost`` carries horizon-scoped fixed bills (always-on fleets).
    """
    if cold_fraction < 0 or cold_fraction > 1:
        raise ValueError("cold_fraction must be within [0, 1]")
    hold = max(0.0, coalesce_window_seconds)
    if coalesce_max_hold_seconds is not None:
        hold = min(hold, max(0.0, coalesce_max_hold_seconds))

    total_cost = standing_cost
    executions = 0.0
    p95 = 0.0
    for size in stats.sizes:
        model = models[size.neurons]
        rate = size.queries / stats.horizon_seconds
        batch = 1.0 + rate * hold
        if coalesce_max_batch_queries is not None:
            batch = min(batch, float(max(1, coalesce_max_batch_queries)))
        batch = min(batch, float(size.queries))
        size_executions = size.queries / batch
        total_cost += (
            size_executions * model.fixed_cost
            + size.queries * size.mean_samples * model.cost_per_sample
        )
        latency = model.execution_latency(batch * size.mean_samples) + hold
        if cold_fraction > _COLD_TAIL_FRACTION:
            latency += model.cold_penalty_seconds
        p95 = max(p95, latency)
        executions += size_executions
    return CandidateEstimate(
        total_cost=total_cost,
        p95_latency_seconds=p95,
        expected_executions=executions,
        horizon_seconds=stats.horizon_seconds,
    )

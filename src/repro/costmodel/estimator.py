"""Cost estimation from captured run metrics or workload parameters.

Two estimation paths are provided, mirroring how the paper uses its cost
model:

* :func:`estimate_from_metrics` -- predict the bill of a run *that already
  happened* from the fine-grained metrics the engine captured (51 per-layer /
  26 per-batch style counters), without looking at the billing ledger.  This
  is the prediction side of the Section VI-F validation.
* :class:`WorkloadCostEstimator` -- predict the bill of a *hypothetical*
  workload (worker count, expected communication volume, expected runtime)
  before running it.  This powers the design recommendations and the daily
  cost projections of Figure 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cloud import PriceBook
from ..core import InferenceMetrics, Variant
from .model import (
    CostBreakdown,
    LambdaUsage,
    ObjectCommUsage,
    QueueCommUsage,
    lambda_cost,
    object_total_cost,
    queue_total_cost,
    serial_total_cost,
)

__all__ = ["estimate_from_metrics", "WorkloadEstimate", "WorkloadCostEstimator"]


def _billed_increments(total_bytes: float, calls: int, increment_bytes: int) -> int:
    """Billed request count for ``calls`` API calls carrying ``total_bytes``.

    Providers bill each call in fixed-size increments; without per-call sizes
    the best unbiased reconstruction from aggregate metrics is to assume the
    payload was spread evenly over the calls.
    """
    if calls <= 0:
        return 0
    per_call = total_bytes / calls
    return int(calls * max(1, math.ceil(per_call / increment_bytes)))


def estimate_from_metrics(
    metrics: InferenceMetrics,
    worker_memory_mb: float,
    coordinator_memory_mb: float = 128.0,
    coordinator_runtime_seconds: float = 0.0,
    data_loading_get_requests: Optional[int] = None,
    prices: Optional[PriceBook] = None,
) -> CostBreakdown:
    """Predict the cost of a completed run from its captured metrics."""
    prices = prices or PriceBook()
    variant = Variant(metrics.variant)

    compute = LambdaUsage(
        workers=metrics.num_workers,
        mean_runtime_seconds=metrics.mean_worker_runtime_seconds,
        memory_mb=worker_memory_mb,
        extra_invocations=0 if variant is Variant.SERIAL else 1,
        extra_gb_seconds=(coordinator_memory_mb / 1024.0) * coordinator_runtime_seconds,
    )

    if data_loading_get_requests is None:
        # One GET per worker per layer for weights plus one per worker for inputs.
        data_loading_get_requests = metrics.num_workers * (metrics.num_layers + 1)

    if variant is Variant.SERIAL:
        breakdown = serial_total_cost(compute, prices)
        loading = data_loading_get_requests * prices.object_price_per_get
        return CostBreakdown(compute=breakdown.compute, communication=loading)

    if variant is Variant.QUEUE:
        billed_publishes = _billed_increments(
            metrics.total_bytes_sent,
            metrics.total_publish_calls,
            prices.pubsub_billing_increment_bytes,
        )
        billed_receives = _billed_increments(
            metrics.total_bytes_received,
            metrics.total_poll_calls,
            prices.queue_billing_increment_bytes,
        )
        comm = QueueCommUsage(
            billed_publish_requests=billed_publishes,
            delivered_bytes=metrics.total_bytes_sent,
            queue_api_requests=billed_receives + metrics.total_delete_calls,
        )
        breakdown = queue_total_cost(compute, comm, prices)
        loading = data_loading_get_requests * prices.object_price_per_get
        return CostBreakdown(
            compute=breakdown.compute, communication=breakdown.communication + loading
        )

    comm = ObjectCommUsage(
        put_requests=metrics.total_put_calls,
        get_requests=metrics.total_get_calls + data_loading_get_requests,
        list_requests=metrics.total_list_calls,
    )
    return object_total_cost(compute, comm, prices)


@dataclass(frozen=True)
class WorkloadEstimate:
    """Description of a hypothetical inference workload."""

    variant: Variant
    workers: int
    layers: int
    expected_runtime_seconds: float
    worker_memory_mb: float
    #: communication volume (bytes of compressed activations) per batch.
    comm_bytes: float = 0.0
    #: number of (source, target, layer) transfers per batch.
    transfers: int = 0
    batches: int = 1


class WorkloadCostEstimator:
    """Forecast costs of hypothetical workloads (Figure 4 / Section IV-C)."""

    def __init__(self, prices: Optional[PriceBook] = None):
        self.prices = prices or PriceBook()

    def estimate(self, workload: WorkloadEstimate) -> CostBreakdown:
        prices = self.prices
        compute = LambdaUsage(
            workers=workload.workers * workload.batches,
            mean_runtime_seconds=workload.expected_runtime_seconds,
            memory_mb=workload.worker_memory_mb,
            extra_invocations=0 if workload.variant is Variant.SERIAL else workload.batches,
        )
        if workload.variant is Variant.SERIAL:
            return serial_total_cost(compute, prices)

        if workload.variant is Variant.QUEUE:
            # Every transfer needs at least one message; additional messages are
            # required once the per-transfer payload exceeds the message limit.
            if workload.transfers:
                per_transfer = workload.comm_bytes / workload.transfers
            else:
                per_transfer = 0.0
            messages_per_transfer = max(1, math.ceil(per_transfer / (256 * 1024)))
            total_messages = workload.transfers * messages_per_transfer * workload.batches
            publishes = math.ceil(total_messages / 10) if total_messages else 0
            billed_publishes = _billed_increments(
                workload.comm_bytes * workload.batches,
                max(publishes, 1) if total_messages else 0,
                prices.pubsub_billing_increment_bytes,
            )
            polls = math.ceil(total_messages / 10) + workload.workers * workload.layers * workload.batches
            comm = QueueCommUsage(
                billed_publish_requests=billed_publishes,
                delivered_bytes=workload.comm_bytes * workload.batches,
                queue_api_requests=polls,
            )
            return queue_total_cost(compute, comm, prices)

        puts = workload.transfers * workload.batches
        gets = workload.transfers * workload.batches
        lists = workload.workers * workload.layers * workload.batches
        comm = ObjectCommUsage(put_requests=puts, get_requests=gets, list_requests=lists)
        return object_total_cost(compute, comm, prices)

    def daily_cost(self, workload: WorkloadEstimate, queries_per_day: int) -> float:
        """Total daily cost for ``queries_per_day`` repetitions of ``workload``."""
        if queries_per_day < 0:
            raise ValueError("queries_per_day cannot be negative")
        per_query = self.estimate(workload).total
        return per_query * queries_per_day

"""Analytical cost model, estimators, validation and design recommendations."""

from .estimator import WorkloadCostEstimator, WorkloadEstimate, estimate_from_metrics
from .model import (
    CostBreakdown,
    LambdaUsage,
    ObjectCommUsage,
    QueueCommUsage,
    lambda_cost,
    object_comm_cost,
    object_total_cost,
    queue_comm_cost,
    queue_total_cost,
    serial_total_cost,
)
from .recommend import (
    CoalescingProfile,
    CoalescingRecommendation,
    Recommendation,
    WorkloadProfile,
    recommend_coalescing,
    recommend_variant,
)
from .scoring import (
    CandidateEstimate,
    QueryCostModel,
    SizeStats,
    WorkloadStats,
    estimate_candidate,
)
from .validator import CostValidationReport, validate_cost_model

__all__ = [
    "WorkloadCostEstimator",
    "WorkloadEstimate",
    "estimate_from_metrics",
    "CostBreakdown",
    "LambdaUsage",
    "ObjectCommUsage",
    "QueueCommUsage",
    "lambda_cost",
    "object_comm_cost",
    "object_total_cost",
    "queue_comm_cost",
    "queue_total_cost",
    "serial_total_cost",
    "CoalescingProfile",
    "CoalescingRecommendation",
    "Recommendation",
    "WorkloadProfile",
    "recommend_coalescing",
    "recommend_variant",
    "CandidateEstimate",
    "QueryCostModel",
    "SizeStats",
    "WorkloadStats",
    "estimate_candidate",
    "CostValidationReport",
    "validate_cost_model",
]

"""Design recommendations for serverless inference (paper Section IV-C).

The paper concludes its cost analysis with three recommendations:

* **FSD-Inf-Serial** for models that comfortably fit one FaaS instance --
  no communication channel, no IPC latency;
* **FSD-Inf-Queue** once the model must be distributed, as long as the
  per-target layer payloads mostly fit the pub/sub publish capacity -- its
  API requests are roughly an order of magnitude cheaper than object-storage
  requests and a single publish/poll can serve up to 10 targets/sources;
* **FSD-Inf-Object** when per-target data volumes grow large enough to
  saturate pub/sub payload limits (very large models), because object sizes
  are effectively unlimited and transfer bytes are not billed.

:func:`recommend_variant` encodes that decision procedure so callers (and the
Figure 4 daily-cost experiment) can pick the per-query variant automatically.

:func:`recommend_coalescing` extends the same per-query economics to the
serving layer's batching question: since invocation charges, coordinator
overhead and per-batch polling are paid *per query* regardless of batch size,
merging ``B`` same-model queries into one request saves ``B - 1`` copies of
those fixed costs -- unless the merged batch forces bigger workers or
super-linear runtime.  The serving layer's ``BatchCoalescingPolicy`` consults
this to decide whether holding queries for a coalescing window wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cloud import MAX_MEMORY_MB, PriceBook
from ..core import Variant
from .estimator import WorkloadCostEstimator, WorkloadEstimate

__all__ = [
    "WorkloadProfile",
    "Recommendation",
    "recommend_variant",
    "CoalescingProfile",
    "CoalescingRecommendation",
    "recommend_coalescing",
]

#: fraction of a FaaS instance's memory the model may occupy before the
#: serial variant stops being recommended (leaves room for activations).
_SERIAL_MEMORY_FRACTION = 0.6
#: pub/sub publish payload capacity (10 messages x 256 KB).
_PUBLISH_CAPACITY_BYTES = 10 * 256 * 1024
#: how many publishes per target per layer we tolerate before switching to
#: object storage (Section IV-C: queue wins "until multiple publishes are
#: consistently required for each target").
_MAX_PUBLISHES_PER_TARGET = 4.0


@dataclass(frozen=True)
class WorkloadProfile:
    """The inputs the recommendation procedure needs."""

    model_bytes: float
    workers: int
    #: expected compressed bytes each worker ships to each of its targets in
    #: one layer (an output of the partitioner / a prior profiling run).
    per_target_layer_bytes: float
    max_faas_memory_mb: int = MAX_MEMORY_MB

    def __post_init__(self) -> None:
        if self.model_bytes < 0 or self.per_target_layer_bytes < 0:
            raise ValueError("workload sizes cannot be negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")


@dataclass(frozen=True)
class Recommendation:
    """A variant recommendation plus the reasoning behind it."""

    variant: Variant
    reason: str


def recommend_variant(profile: WorkloadProfile) -> Recommendation:
    """Apply the paper's design recommendations to ``profile``."""
    serial_capacity_bytes = profile.max_faas_memory_mb * 1024 * 1024 * _SERIAL_MEMORY_FRACTION
    if profile.model_bytes <= serial_capacity_bytes:
        return Recommendation(
            variant=Variant.SERIAL,
            reason=(
                "model fits comfortably in a single FaaS instance; single-instance "
                "execution avoids all IPC latency and communication charges"
            ),
        )

    publishes_per_target = profile.per_target_layer_bytes / _PUBLISH_CAPACITY_BYTES
    if publishes_per_target <= _MAX_PUBLISHES_PER_TARGET:
        return Recommendation(
            variant=Variant.QUEUE,
            reason=(
                "per-target layer payloads fit within a few pub/sub publishes; "
                "pub-sub/queueing API requests are ~1 OOM cheaper than object storage "
                "requests, so costs grow slowly with worker parallelism"
            ),
        )

    return Recommendation(
        variant=Variant.OBJECT,
        reason=(
            "per-target data volumes saturate pub/sub payload capacity; object "
            "storage offers effectively unlimited object sizes and free data "
            "transfer, so it is the leading choice for very large inference tasks"
        ),
    )


@dataclass(frozen=True)
class CoalescingProfile:
    """Inputs for the batch-coalescing decision.

    Describes ``batch_queries`` identical queries of one model size, either
    executed separately (the split plan) or folded into one merged request.
    The merged request defaults to linear scaling -- runtime grows with the
    sample count, worker memory stays put -- which callers can override when
    profiling shows otherwise (e.g. activation growth forcing larger workers).
    """

    variant: Variant
    workers: int
    layers: int
    per_query_runtime_seconds: float
    worker_memory_mb: float
    batch_queries: int = 2
    per_query_comm_bytes: float = 0.0
    per_query_transfers: int = 0
    merged_runtime_seconds: Optional[float] = None
    merged_worker_memory_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if self.batch_queries < 2:
            raise ValueError("coalescing needs at least two queries to merge")
        if self.per_query_runtime_seconds < 0:
            raise ValueError("runtime cannot be negative")


@dataclass(frozen=True)
class CoalescingRecommendation:
    """Whether merging wins, with the predicted costs behind the verdict."""

    merge: bool
    split_cost: float
    merged_cost: float
    reason: str

    @property
    def predicted_saving(self) -> float:
        return self.split_cost - self.merged_cost


def recommend_coalescing(
    profile: CoalescingProfile, prices: Optional[PriceBook] = None
) -> CoalescingRecommendation:
    """Predict whether merging ``batch_queries`` queries into one batch wins.

    Both plans are priced through :class:`WorkloadCostEstimator` (the Figure-4
    forecasting path): the split plan repeats the per-query workload
    ``batch_queries`` times, the merged plan runs once with summed samples.
    """
    estimator = WorkloadCostEstimator(prices)
    split = estimator.estimate(
        WorkloadEstimate(
            variant=profile.variant,
            workers=profile.workers,
            layers=profile.layers,
            expected_runtime_seconds=profile.per_query_runtime_seconds,
            worker_memory_mb=profile.worker_memory_mb,
            comm_bytes=profile.per_query_comm_bytes,
            transfers=profile.per_query_transfers,
            batches=profile.batch_queries,
        )
    )
    merged_runtime = (
        profile.merged_runtime_seconds
        if profile.merged_runtime_seconds is not None
        else profile.per_query_runtime_seconds * profile.batch_queries
    )
    merged_memory = (
        profile.merged_worker_memory_mb
        if profile.merged_worker_memory_mb is not None
        else profile.worker_memory_mb
    )
    merged = estimator.estimate(
        WorkloadEstimate(
            variant=profile.variant,
            workers=profile.workers,
            layers=profile.layers,
            expected_runtime_seconds=merged_runtime,
            worker_memory_mb=merged_memory,
            comm_bytes=profile.per_query_comm_bytes * profile.batch_queries,
            transfers=profile.per_query_transfers,
            batches=1,
        )
    )
    if merged.total < split.total:
        reason = (
            f"one merged request ({merged.total:.3e}) undercuts "
            f"{profile.batch_queries} separate queries ({split.total:.3e}): "
            "invocation, coordinator and per-batch polling charges are paid "
            "once instead of per query"
        )
        return CoalescingRecommendation(
            merge=True, split_cost=split.total, merged_cost=merged.total, reason=reason
        )
    reason = (
        f"merging does not pay: the merged request ({merged.total:.3e}) costs at "
        f"least as much as {profile.batch_queries} separate queries "
        f"({split.total:.3e}), e.g. because the bigger batch forces larger "
        "workers or super-linear runtime"
    )
    return CoalescingRecommendation(
        merge=False, split_cost=split.total, merged_cost=merged.total, reason=reason
    )

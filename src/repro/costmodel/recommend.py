"""Design recommendations for serverless inference (paper Section IV-C).

The paper concludes its cost analysis with three recommendations:

* **FSD-Inf-Serial** for models that comfortably fit one FaaS instance --
  no communication channel, no IPC latency;
* **FSD-Inf-Queue** once the model must be distributed, as long as the
  per-target layer payloads mostly fit the pub/sub publish capacity -- its
  API requests are roughly an order of magnitude cheaper than object-storage
  requests and a single publish/poll can serve up to 10 targets/sources;
* **FSD-Inf-Object** when per-target data volumes grow large enough to
  saturate pub/sub payload limits (very large models), because object sizes
  are effectively unlimited and transfer bytes are not billed.

:func:`recommend_variant` encodes that decision procedure so callers (and the
Figure 4 daily-cost experiment) can pick the per-query variant automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cloud import MAX_MEMORY_MB
from ..core import Variant

__all__ = ["WorkloadProfile", "Recommendation", "recommend_variant"]

#: fraction of a FaaS instance's memory the model may occupy before the
#: serial variant stops being recommended (leaves room for activations).
_SERIAL_MEMORY_FRACTION = 0.6
#: pub/sub publish payload capacity (10 messages x 256 KB).
_PUBLISH_CAPACITY_BYTES = 10 * 256 * 1024
#: how many publishes per target per layer we tolerate before switching to
#: object storage (Section IV-C: queue wins "until multiple publishes are
#: consistently required for each target").
_MAX_PUBLISHES_PER_TARGET = 4.0


@dataclass(frozen=True)
class WorkloadProfile:
    """The inputs the recommendation procedure needs."""

    model_bytes: float
    workers: int
    #: expected compressed bytes each worker ships to each of its targets in
    #: one layer (an output of the partitioner / a prior profiling run).
    per_target_layer_bytes: float
    max_faas_memory_mb: int = MAX_MEMORY_MB

    def __post_init__(self) -> None:
        if self.model_bytes < 0 or self.per_target_layer_bytes < 0:
            raise ValueError("workload sizes cannot be negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")


@dataclass(frozen=True)
class Recommendation:
    """A variant recommendation plus the reasoning behind it."""

    variant: Variant
    reason: str


def recommend_variant(profile: WorkloadProfile) -> Recommendation:
    """Apply the paper's design recommendations to ``profile``."""
    serial_capacity_bytes = profile.max_faas_memory_mb * 1024 * 1024 * _SERIAL_MEMORY_FRACTION
    if profile.model_bytes <= serial_capacity_bytes:
        return Recommendation(
            variant=Variant.SERIAL,
            reason=(
                "model fits comfortably in a single FaaS instance; single-instance "
                "execution avoids all IPC latency and communication charges"
            ),
        )

    publishes_per_target = profile.per_target_layer_bytes / _PUBLISH_CAPACITY_BYTES
    if publishes_per_target <= _MAX_PUBLISHES_PER_TARGET:
        return Recommendation(
            variant=Variant.QUEUE,
            reason=(
                "per-target layer payloads fit within a few pub/sub publishes; "
                "pub-sub/queueing API requests are ~1 OOM cheaper than object storage "
                "requests, so costs grow slowly with worker parallelism"
            ),
        )

    return Recommendation(
        variant=Variant.OBJECT,
        reason=(
            "per-target data volumes saturate pub/sub payload capacity; object "
            "storage offers effectively unlimited object sizes and free data "
            "transfer, so it is the leading choice for very large inference tasks"
        ),
    )

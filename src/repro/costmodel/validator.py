"""Cost-model validation against the billing ledger (paper Section VI-F).

The paper validates its analytical cost model by predicting charges from
captured fine-grained metrics and comparing them with the AWS Cost & Usage
report for the same time window.  Here the "actual" side is the simulated
billing ledger: the validator scopes the ledger to one run, aggregates the
compute and communication charges, and reports the relative error of the
model's prediction per component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cloud import CostReport, PriceBook
from ..core import InferenceMetrics, InferenceResult
from .estimator import estimate_from_metrics
from .model import CostBreakdown

__all__ = ["CostValidationReport", "validate_cost_model"]


@dataclass(frozen=True)
class CostValidationReport:
    """Predicted vs actual cost for one inference run."""

    predicted: CostBreakdown
    actual_compute: float
    actual_communication: float

    @property
    def actual_total(self) -> float:
        return self.actual_compute + self.actual_communication

    @property
    def compute_error(self) -> float:
        return _relative_error(self.predicted.compute, self.actual_compute)

    @property
    def communication_error(self) -> float:
        return _relative_error(self.predicted.communication, self.actual_communication)

    @property
    def total_error(self) -> float:
        return _relative_error(self.predicted.total, self.actual_total)

    def within(self, tolerance: float) -> bool:
        """True when every component error is within ``tolerance`` (fractional)."""
        return (
            self.compute_error <= tolerance
            and self.communication_error <= tolerance
            and self.total_error <= tolerance
        )

    def summary(self) -> dict:
        return {
            "predicted_compute": self.predicted.compute,
            "predicted_communication": self.predicted.communication,
            "predicted_total": self.predicted.total,
            "actual_compute": self.actual_compute,
            "actual_communication": self.actual_communication,
            "actual_total": self.actual_total,
            "compute_error": self.compute_error,
            "communication_error": self.communication_error,
            "total_error": self.total_error,
        }


def _relative_error(predicted: float, actual: float) -> float:
    if actual == 0.0:
        return 0.0 if predicted == 0.0 else float("inf")
    return abs(predicted - actual) / actual


def validate_cost_model(
    result: InferenceResult,
    worker_memory_mb: float,
    coordinator_memory_mb: float = 128.0,
    prices: Optional[PriceBook] = None,
) -> CostValidationReport:
    """Compare the analytical prediction with the billed cost of ``result``."""
    metrics: InferenceMetrics = result.metrics
    predicted = estimate_from_metrics(
        metrics,
        worker_memory_mb=worker_memory_mb,
        coordinator_memory_mb=coordinator_memory_mb,
        coordinator_runtime_seconds=metrics.coordinator_seconds,
        prices=prices,
    )
    actual: CostReport = result.cost
    return CostValidationReport(
        predicted=predicted,
        actual_compute=actual.compute_cost,
        actual_communication=actual.communication_cost,
    )

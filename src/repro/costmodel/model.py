"""The FSD-Inference cost model (paper Section IV, Equations 1-7).

The model expresses the end-to-end cost of one inference run as the sum of
FaaS compute charges and communication-service charges:

* ``C_Queue  = C_lambda + C_SNS + C_SQS``   (Equation 1)
* ``C_Object = C_lambda + C_S3``            (Equation 2)
* ``C_Serial = C_lambda``                   (Equation 3)

with

* ``C_lambda = P * C_inv + P * T_bar * M * C_run``          (Equation 4)
* ``C_SNS    = S * C_pub + Z * C_byte``                      (Equation 5)
* ``C_SQS    = Q * C_api``                                   (Equation 6)
* ``C_S3     = V * C_put + R * C_get + L * C_list``          (Equation 7)

The unit prices come from :class:`repro.cloud.PriceBook`, so what-if pricing
studies only need a modified price book.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cloud import PriceBook

__all__ = [
    "LambdaUsage",
    "QueueCommUsage",
    "ObjectCommUsage",
    "CostBreakdown",
    "lambda_cost",
    "queue_comm_cost",
    "object_comm_cost",
    "serial_total_cost",
    "queue_total_cost",
    "object_total_cost",
]


@dataclass(frozen=True)
class LambdaUsage:
    """Inputs of Equation 4."""

    workers: int
    mean_runtime_seconds: float
    memory_mb: float
    #: additional lightweight invocations (e.g. the 128 MB coordinator).
    extra_invocations: int = 0
    extra_gb_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 0 or self.mean_runtime_seconds < 0 or self.memory_mb < 0:
            raise ValueError("lambda usage quantities cannot be negative")


@dataclass(frozen=True)
class QueueCommUsage:
    """Inputs of Equations 5 and 6."""

    billed_publish_requests: int
    delivered_bytes: float
    queue_api_requests: int

    def __post_init__(self) -> None:
        if min(self.billed_publish_requests, self.queue_api_requests) < 0 or self.delivered_bytes < 0:
            raise ValueError("queue communication quantities cannot be negative")


@dataclass(frozen=True)
class ObjectCommUsage:
    """Inputs of Equation 7."""

    put_requests: int
    get_requests: int
    list_requests: int

    def __post_init__(self) -> None:
        if min(self.put_requests, self.get_requests, self.list_requests) < 0:
            raise ValueError("object communication quantities cannot be negative")


@dataclass(frozen=True)
class CostBreakdown:
    """Predicted cost split into compute and communication components."""

    compute: float
    communication: float

    @property
    def total(self) -> float:
        return self.compute + self.communication


def lambda_cost(usage: LambdaUsage, prices: Optional[PriceBook] = None) -> float:
    """Equation 4: ``P*C_inv + P*T_bar*M*C_run`` (plus any extra invocations)."""
    prices = prices or PriceBook()
    memory_gb = usage.memory_mb / 1024.0
    invocation_cost = (usage.workers + usage.extra_invocations) * prices.faas_price_per_invocation
    runtime_cost = (
        usage.workers * usage.mean_runtime_seconds * memory_gb + usage.extra_gb_seconds
    ) * prices.faas_price_per_gb_second
    return invocation_cost + runtime_cost


def queue_comm_cost(usage: QueueCommUsage, prices: Optional[PriceBook] = None) -> float:
    """Equations 5 + 6: pub/sub publishes, delivered bytes and queue API calls."""
    prices = prices or PriceBook()
    sns = (
        usage.billed_publish_requests * prices.pubsub_price_per_publish
        + usage.delivered_bytes * prices.pubsub_price_per_byte_delivered
    )
    sqs = usage.queue_api_requests * prices.queue_price_per_request
    return sns + sqs


def object_comm_cost(usage: ObjectCommUsage, prices: Optional[PriceBook] = None) -> float:
    """Equation 7: PUT, GET and LIST request charges."""
    prices = prices or PriceBook()
    return (
        usage.put_requests * prices.object_price_per_put
        + usage.get_requests * prices.object_price_per_get
        + usage.list_requests * prices.object_price_per_list
    )


def serial_total_cost(compute: LambdaUsage, prices: Optional[PriceBook] = None) -> CostBreakdown:
    """Equation 3: the serial variant only pays for FaaS compute."""
    return CostBreakdown(compute=lambda_cost(compute, prices), communication=0.0)


def queue_total_cost(
    compute: LambdaUsage,
    comm: QueueCommUsage,
    prices: Optional[PriceBook] = None,
) -> CostBreakdown:
    """Equation 1."""
    return CostBreakdown(
        compute=lambda_cost(compute, prices),
        communication=queue_comm_cost(comm, prices),
    )


def object_total_cost(
    compute: LambdaUsage,
    comm: ObjectCommUsage,
    prices: Optional[PriceBook] = None,
) -> CostBreakdown:
    """Equation 2."""
    return CostBreakdown(
        compute=lambda_cost(compute, prices),
        communication=object_comm_cost(comm, prices),
    )

"""The interleaved serve loop: overlapping queries on one contended timeline.

This is the concurrency engine's integration point with the serving layer.
It mirrors :meth:`repro.serving.InferenceServer._serve_exact` -- same heap,
same event kinds, same policy hooks, same admission semantics -- but instead
of finishing each admitted unit at ``now + latency`` unconditionally, it

1. runs the unit's *solo* simulation at admission time (billing, warm pools
   and invocation records are exactly the serialized loop's -- contention
   stretches the serving-layer timeline, not the substrate's bills; see
   ROADMAP for this documented approximation),
2. collects every channel op and FaaS invocation span the execution touched
   (via the :class:`~repro.cloud.contention.ContentionDomain` mount),
3. hands the op log to the :class:`~repro.concurrency.FairShareArbiter`,
   which interleaves it with every other in-flight unit's log and emits
   boundary events back onto the *same* server heap, and
4. releases the admission slot only when the unit's contended chain
   finishes -- later than its solo finish exactly when finite capacities
   bound.

Channel resources are namespaced per in-flight query (``"queue:q{id}:..."``),
which both preserves logical isolation across queries and surfaces the
latent collision risk of the shared engine prefix: two concurrently in-flight
queries with the same id would silently share queue/topic/bucket resources,
so admission validates namespace uniqueness and fails loudly.

Byte-identity contract: with an unbounded :class:`ContentionConfig` every
chain finishes at bit-for-bit ``admit + latency`` and all interference is
exactly ``0.0``, so the records, channel stats, cost report and summary are
identical to the serialized loop's -- the arbiter's extra heap events change
nothing observable.  Tier-A outcome memoisation is bypassed (like chaos):
interleaved serves must re-simulate every execution so the op log reflects
the true warm-pool state.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..comm import ChannelStats
from ..serving.server import (
    _ARRIVAL,
    _COMPLETION,
    _POLICY_TICK,
    QueryRecord,
    ServingReport,
    peak_overlap,
)
from ..workloads import InferenceQuery, SporadicWorkload
from .arbiter import FairShareArbiter

__all__ = ["interleaved_serve"]


class _OpCollector:
    """Collects one unit's channel/FaaS op spans during its solo execution.

    Installed on the backend's :class:`~repro.cloud.contention.ContentionDomain`
    around ``execute_batch``; the duck-typed counterpart of the arbiter hooks
    in the cloud services.  Channel resources are namespaced per query;
    ``"faas"`` stays platform-global so the invocation quota binds across
    queries.
    """

    __slots__ = ("namespace", "ops")

    def __init__(self, namespace: str):
        self.namespace = namespace
        self.ops: List[Tuple[str, float, float]] = []

    def channel_op(
        self, service: str, op: str, resource: str, end: float, duration: float
    ) -> None:
        if duration > 0.0:
            self.ops.append((f"{service}:{self.namespace}:{resource}", end - duration, end))

    def invocation(self, name: str, start: float, end: float) -> None:
        if end > start:
            self.ops.append(("faas", start, end))


class _Slot:
    """One admitted unit: its solo outcomes plus its contended chain."""

    __slots__ = ("unit", "outcomes", "group", "admitted_at", "chain", "namespace", "finish")

    def __init__(self, unit, outcomes, group, admitted_at, chain, namespace):
        self.unit = unit
        self.outcomes = outcomes
        self.group = group
        self.admitted_at = admitted_at
        self.chain = chain
        self.namespace = namespace
        #: set for chain-less (zero-latency) units; chains carry their own.
        self.finish = admitted_at

    @property
    def delay(self) -> float:
        return self.chain.delay if self.chain is not None else 0.0


def interleaved_serve(server, workload: SporadicWorkload) -> ServingReport:
    """Replay ``workload`` with in-flight queries sharing the timeline."""
    config = server.config
    backend = server.backend
    concurrency = config.concurrency
    assert concurrency is not None
    contention = concurrency.contention
    arbiter = FairShareArbiter(contention)

    tracer = None
    serve_span = None
    if config.telemetry is not None:
        tracer = config.telemetry.build_tracer()
        backend.install_telemetry(tracer)
        serve_span = tracer.begin_span("serve", track="server", start=0.0, backend=backend.name)
    backend.begin(workload)
    policies = config.policies
    for policy in policies:
        policy.begin(workload)

    events: List[Tuple[float, int, int, object]] = []
    seq = 0
    for query in workload.iter_trace():
        heapq.heappush(events, (query.arrival_time, _ARRIVAL, seq, query))
        seq += 1

    pending: Deque[Tuple[InferenceQuery, ...]] = deque()
    channel_total = ChannelStats()
    in_flight = 0
    slots: List[_Slot] = []  # admission order; records materialize from this
    slot_by_chain: Dict[int, _Slot] = {}
    inflight_namespaces: Dict[str, int] = {}

    def current_limit() -> Optional[int]:
        limit = config.max_concurrent_queries
        for policy in policies:
            limit = policy.admission_limit(
                limit, queue_depth=len(pending), in_flight=in_flight
            )
        return limit

    def admit(now: float) -> None:
        nonlocal in_flight, seq
        while pending:
            limit = current_limit()
            if limit is not None and in_flight >= limit:
                break
            unit = pending.popleft()
            leader = unit[0]
            namespace = f"q{leader.query_id}"
            if namespace in inflight_namespaces:
                raise ValueError(
                    f"resource namespace collision: query id {leader.query_id} admitted "
                    f"at t={now:.6f} while query id {inflight_namespaces[namespace]} is "
                    f"still in flight under namespace '{namespace}'; interleaved "
                    f"execution requires unique query ids among concurrently running "
                    f"queries (duplicates would silently share per-query "
                    f"queue/topic/bucket resources)"
                )
            collector = _OpCollector(namespace)
            backend.install_contention(collector)
            try:
                outcomes = backend.execute_batch(list(unit), at_time=now)
            finally:
                backend.clear_contention()
            group = tuple(query.query_id for query in unit) if len(unit) > 1 else ()
            if tracer is not None and len(unit) > 1:
                tracer.event("coalesced", track="server", t=now, group=list(group))
            for outcome in outcomes:
                if outcome.channel_stats is not None:
                    channel_total.accumulate(outcome.channel_stats)
            latency = outcomes[0].latency_seconds
            if latency > 0.0:
                chain, reschedules = arbiter.admit(collector.ops, now, latency)
                slot = _Slot(unit, outcomes, group, now, chain, namespace)
                slot_by_chain[chain.key] = slot
                for when, generation, rechain in reschedules:
                    heapq.heappush(events, (when, _COMPLETION, seq, ("chain", rechain, generation)))
                    seq += 1
            else:
                # Degenerate zero-latency unit: nothing to contend for.
                slot = _Slot(unit, outcomes, group, now, None, namespace)
                slot.finish = now + latency
                heapq.heappush(events, (slot.finish, _COMPLETION, seq, ("direct", slot)))
                seq += 1
            slots.append(slot)
            inflight_namespaces[namespace] = leader.query_id
            in_flight += 1

    while events:
        now, kind, _, payload = heapq.heappop(events)
        if kind == _ARRIVAL:
            query = payload
            decision = None
            for policy in policies:
                decision = policy.on_arrival(query, now)
                if decision is not None:
                    break
            if decision is None:
                pending.append((query,))
            elif decision.tick_at is not None:
                heapq.heappush(events, (decision.tick_at, _POLICY_TICK, seq, None))
                seq += 1
        elif kind == _COMPLETION:
            if payload[0] == "chain":
                _, chain, generation = payload
                result = arbiter.on_event(chain, generation, now)
                if result is None:
                    continue  # stale: the chain was rescheduled meanwhile
                finished, reschedules = result
                for when, new_generation, rechain in reschedules:
                    heapq.heappush(
                        events, (when, _COMPLETION, seq, ("chain", rechain, new_generation))
                    )
                    seq += 1
                if not finished:
                    continue  # internal boundary crossing: no admission change
                slot = slot_by_chain.pop(chain.key)
            else:
                slot = payload[1]
            del inflight_namespaces[slot.namespace]
            in_flight -= 1
            for policy in policies:
                policy.on_completion(now, in_flight=in_flight, queue_depth=len(pending))
        else:  # policy tick
            for policy in policies:
                for unit in policy.on_tick(now):
                    if unit:
                        pending.append(tuple(unit))
        admit(now)
        if tracer is not None:
            tracer.gauge_sample("server.queue_depth", float(len(pending)), now)
            tracer.gauge_sample("server.in_flight", float(in_flight), now)

    cost = backend.finish()

    # Materialize records in admission order -- the serialized loop's record
    # order -- now that every chain's final delay is known.  With all delays
    # exactly 0.0 (unbounded contention) each finished_at equals the solo
    # ``admitted_at + latency`` bit-for-bit.
    records: List[QueryRecord] = []
    delays: List[float] = []
    for slot in slots:
        delay = slot.delay
        for query, outcome in zip(slot.unit, slot.outcomes):
            solo_finish = slot.admitted_at + outcome.latency_seconds
            finished_at = solo_finish + delay
            delays.append(delay)
            records.append(
                QueryRecord(
                    query_id=query.query_id,
                    neurons=query.neurons,
                    samples=query.samples,
                    arrival_time=query.arrival_time,
                    started_at=slot.admitted_at,
                    finished_at=finished_at,
                    cost=outcome.cost,
                    cold_starts=outcome.cold_starts,
                    warm_starts=outcome.warm_starts,
                    coalesced_group=slot.group,
                    tenant=query.tenant,
                    interference_seconds=delay,
                )
            )
            if tracer is not None:
                query_span = tracer.record_span(
                    "query",
                    track="queries",
                    start=query.arrival_time,
                    end=finished_at,
                    parent=serve_span,
                    query_id=query.query_id,
                    neurons=query.neurons,
                    samples=query.samples,
                    outcome="completed",
                    attempts=1,
                )
                tracer.record_span(
                    "attempt",
                    track="queries",
                    start=slot.admitted_at,
                    end=finished_at,
                    parent=query_span,
                    attempt=1,
                    cold_starts=outcome.cold_starts,
                    warm_starts=outcome.warm_starts,
                )
                if delay > 0.0:
                    # One span per contended wait: the stretch the arbiter
                    # added beyond the solo finish.
                    tracer.record_span(
                        "contended_wait",
                        track="queries",
                        start=solo_finish,
                        end=finished_at,
                        parent=query_span,
                        interference_seconds=delay,
                    )

    if tracer is not None:
        serve_end = max((record.finished_at for record in records), default=0.0)
        tracer.end_span(serve_span, serve_end)
        backend.clear_telemetry()

    # The "concurrency" summary key is opt-in twice over: only a *bounded*
    # contention config can stretch a timeline, so only a bounded config adds
    # it -- an unbounded interleaved serve is observationally identical to
    # the serialized loop and must keep its fingerprints byte-for-byte.
    concurrency_stats: Optional[Dict[str, object]] = None
    if contention.is_bounded:
        interfered = sum(1 for delay in delays if delay > 0.0)
        concurrency_stats = {
            "config": concurrency.describe(),
            "interfered_query_count": interfered,
            "interference_total_seconds": float(sum(delays)),
            "interference_max_seconds": float(max(delays)) if delays else 0.0,
            "interference_mean_seconds": (
                float(sum(delays) / len(delays)) if delays else None
            ),
            "resources": arbiter.resource_summary(),
        }

    return ServingReport(
        backend=backend.name,
        config=config,
        horizon_seconds=workload.horizon_seconds,
        records=records,
        cost=cost,
        peak_concurrent_queries=peak_overlap(
            (record.started_at, record.finished_at) for record in records
        ),
        peak_concurrent_workers=peak_overlap(backend.worker_intervals()),
        channel_stats=channel_total,
        fault_counts={},
        telemetry=tracer,
        concurrency_stats=concurrency_stats,
    )

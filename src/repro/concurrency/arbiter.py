"""Deterministic fair-share arbiter: processor sharing over collected op logs.

Each admitted unit becomes a *chain*: the solo execution's ``[0, latency]``
span cut into segments at every collected op boundary, each segment weighted
by the resources its overlapping ops occupy.  Chains progress through their
segments at a rate set by the most contended resource they currently touch
(``min_r min(1, cap_r / K_r)`` where ``K_r`` sums the active weight of every
in-flight chain on ``r``), recomputed whenever any chain enters or exits a
segment -- textbook processor sharing: an op overlapping ``k`` peers on a
capacity-``c`` resource takes ``k/c`` times its solo latency while the
overlap lasts.

Exactness contract (load-bearing for the byte-identity gate): a chain's
finish time is always computed as ``(admit + latency) + delay`` where
``delay`` starts at exactly ``0.0`` and only ever grows while a rate is
strictly below ``1.0``.  Segment-boundary times at rate ``1.0`` are likewise
computed non-incrementally (``(admit + boundary) + delay``), never by
decrementing a remaining-work float.  An unbounded arbiter therefore finishes
every chain at bit-for-bit ``admit + latency`` -- the serialized loop's
``now + outcomes[0].latency_seconds`` -- no matter how many chains interleave.

Determinism: chains are keyed by admission sequence; whenever a boundary
event fans out to peer chains sharing a resource, the peers are processed in
ascending key order, so two replays of the same seed produce identical event
streams regardless of hash seeds or executor threading.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

from .config import ContentionConfig

__all__ = ["FairShareArbiter"]

#: an op span collected during one unit's solo execution: (resource key,
#: absolute start, absolute end).  Channel resources arrive already
#: namespaced per query (``"queue:q7:<name>"``); ``"faas"`` is global.
OpSpan = Tuple[str, float, float]


class _Chain:
    """One in-flight unit's contended timeline."""

    __slots__ = (
        "key",
        "admit",
        "latency",
        "boundaries",
        "usages",
        "index",
        "s",
        "t_last",
        "rate",
        "delay",
        "generation",
        "done",
        "finish",
    )

    def __init__(
        self,
        key: int,
        admit: float,
        latency: float,
        boundaries: List[float],
        usages: List[Dict[str, float]],
    ):
        self.key = key
        self.admit = admit
        self.latency = latency
        #: ascending solo-progress offsets; boundaries[0] == 0.0,
        #: boundaries[-1] == latency; segment i covers
        #: (boundaries[i], boundaries[i+1]).
        self.boundaries = boundaries
        self.usages = usages
        self.index = 0
        #: solo progress in [0, latency]; snapped to the exact boundary value
        #: at every crossing so float drift never crosses an event.
        self.s = 0.0
        self.t_last = admit
        self.rate = 1.0
        #: contention-added wall time; exactly 0.0 until a rate < 1.0 bites.
        self.delay = 0.0
        #: bumped on every reschedule; heap events carrying a stale
        #: generation are ignored.
        self.generation = 0
        self.done = False
        self.finish = admit + latency

    @property
    def interference_seconds(self) -> float:
        return self.delay


def _build_segments(
    ops: Iterable[OpSpan], admit: float, latency: float
) -> Tuple[List[float], List[Dict[str, float]]]:
    """Cut ``[0, latency]`` at every (clamped) op boundary; weight segments."""
    cuts = {0.0, latency}
    spans: List[Tuple[str, float, float]] = []
    for resource, abs_start, abs_end in ops:
        start = abs_start - admit
        end = abs_end - admit
        if start < 0.0:
            start = 0.0
        if end > latency:
            end = latency
        if end <= start:
            continue
        spans.append((resource, start, end))
        cuts.add(start)
        cuts.add(end)
    boundaries = sorted(cuts)
    usages: List[Dict[str, float]] = [{} for _ in range(len(boundaries) - 1)]
    for resource, start, end in spans:
        index = bisect_left(boundaries, start)
        while index < len(usages) and boundaries[index] < end:
            usage = usages[index]
            usage[resource] = usage.get(resource, 0.0) + 1.0
            index += 1
    return boundaries, usages


class FairShareArbiter:
    """Deterministic processor-sharing arbiter over namespaced resources.

    The serve loop drives it with three calls: :meth:`admit` when a unit is
    dispatched, :meth:`on_event` when a previously scheduled boundary event
    pops off the server heap, and :meth:`resource_summary` at the end.  Both
    scheduling calls return ``(time, generation, chain)`` tuples the caller
    must push onto its heap; events whose generation no longer matches the
    chain are stale and must be ignored (the chain was rescheduled when a
    peer entered or left one of its resources).
    """

    def __init__(self, contention: ContentionConfig):
        self.contention = contention
        self._next_key = 0
        #: resource -> total active weight across all chains' current segments.
        self._weights: Dict[str, float] = {}
        #: resource -> peak active weight ever observed (utilization stats).
        self._peak_weight: Dict[str, float] = {}
        #: resource -> chains whose *current* segment uses it, in admission
        #: order (dict, not set: set iteration order is id-dependent and
        #: would break replay determinism).
        self._active_on: Dict[str, Dict[int, _Chain]] = {}

    # -- rate model -----------------------------------------------------------

    def _share(self, resource: str, total_weight: float) -> float:
        capacity = self.contention.capacity_for(resource)
        if capacity is None or total_weight <= capacity:
            return 1.0
        return capacity / total_weight

    def _chain_rate(self, chain: _Chain) -> float:
        rate = 1.0
        for resource in chain.usages[chain.index]:
            share = self._share(resource, self._weights[resource])
            if share < rate:
                rate = share
        return rate

    # -- state bookkeeping ----------------------------------------------------

    def _advance(self, chain: _Chain, t: float) -> None:
        elapsed = t - chain.t_last
        if elapsed > 0.0:
            chain.s += chain.rate * elapsed
            if chain.rate < 1.0:
                chain.delay += (1.0 - chain.rate) * elapsed
            chain.t_last = t

    def _schedule(self, chain: _Chain, t: float) -> Tuple[float, int, _Chain]:
        boundary = chain.boundaries[chain.index + 1]
        if chain.rate == 1.0:
            # Non-incremental: exact whenever the chain has never been
            # contended (delay == 0.0 and t == admit + s + delay).
            when = (chain.admit + boundary) + chain.delay
            if when < t:
                when = t
        else:
            when = t + (boundary - chain.s) / chain.rate
        chain.generation += 1
        return (when, chain.generation, chain)

    def _enter_segment(self, chain: _Chain, changed: Dict[str, None]) -> None:
        for resource, weight in chain.usages[chain.index].items():
            total = self._weights.get(resource, 0.0) + weight
            self._weights[resource] = total
            if total > self._peak_weight.get(resource, 0.0):
                self._peak_weight[resource] = total
            self._active_on.setdefault(resource, {})[chain.key] = chain
            changed[resource] = None

    def _exit_segment(self, chain: _Chain, changed: Dict[str, None]) -> None:
        for resource, weight in chain.usages[chain.index].items():
            self._weights[resource] -= weight
            active = self._active_on[resource]
            del active[chain.key]
            changed[resource] = None

    def _reschedule_peers(
        self, chain: _Chain, changed: Dict[str, None], t: float
    ) -> List[Tuple[float, int, _Chain]]:
        affected: Dict[int, _Chain] = {}
        for resource in changed:
            for key, other in self._active_on.get(resource, {}).items():
                if other is not chain:
                    affected[key] = other
        reschedules: List[Tuple[float, int, _Chain]] = []
        for key in sorted(affected):
            other = affected[key]
            self._advance(other, t)
            new_rate = self._chain_rate(other)
            if new_rate != other.rate:
                other.rate = new_rate
                reschedules.append(self._schedule(other, t))
        return reschedules

    # -- serve-loop API -------------------------------------------------------

    def admit(
        self, ops: Iterable[OpSpan], admit_time: float, latency: float
    ) -> Tuple[_Chain, List[Tuple[float, int, _Chain]]]:
        """Register a dispatched unit; returns its chain plus heap events."""
        if not latency > 0.0:
            raise ValueError(f"chain latency must be positive; got {latency!r}")
        boundaries, usages = _build_segments(ops, admit_time, latency)
        chain = _Chain(self._next_key, admit_time, latency, boundaries, usages)
        self._next_key += 1
        changed: Dict[str, None] = {}
        self._enter_segment(chain, changed)
        reschedules = self._reschedule_peers(chain, changed, admit_time)
        chain.rate = self._chain_rate(chain)
        reschedules.append(self._schedule(chain, admit_time))
        return chain, reschedules

    def on_event(
        self, chain: _Chain, generation: int, t: float
    ) -> Optional[Tuple[bool, List[Tuple[float, int, _Chain]]]]:
        """Process one boundary event; ``None`` when stale.

        Returns ``(finished, reschedules)``: ``finished`` is True when this
        crossing completed the chain (its ``finish`` and ``delay`` are now
        final and the serve loop should release the admission slot).
        """
        if chain.done or generation != chain.generation:
            return None
        self._advance(chain, t)
        changed: Dict[str, None] = {}
        self._exit_segment(chain, changed)
        chain.index += 1
        if chain.index >= len(chain.usages):
            chain.done = True
            chain.finish = t
            reschedules = self._reschedule_peers(chain, changed, t)
            return (True, reschedules)
        chain.s = chain.boundaries[chain.index]
        self._enter_segment(chain, changed)
        reschedules = self._reschedule_peers(chain, changed, t)
        chain.rate = self._chain_rate(chain)
        reschedules.append(self._schedule(chain, t))
        return (False, reschedules)

    # -- reporting ------------------------------------------------------------

    def resource_summary(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Peak weight / utilization / backlog per resource class."""
        per_class: Dict[str, float] = {}
        for resource, peak in self._peak_weight.items():
            resource_class = resource.partition(":")[0]
            if peak > per_class.get(resource_class, 0.0):
                per_class[resource_class] = peak
        summary: Dict[str, Dict[str, Optional[float]]] = {}
        for resource_class in sorted(per_class):
            capacity = self.contention.class_capacity(resource_class)
            entry: Dict[str, Optional[float]] = {
                "peak_weight": per_class[resource_class],
                "capacity": capacity,
            }
            if capacity is not None:
                entry["peak_utilization"] = per_class[resource_class] / capacity
                entry["peak_backlog"] = max(0.0, per_class[resource_class] - capacity)
            summary[resource_class] = entry
        return summary

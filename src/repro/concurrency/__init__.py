"""Concurrent-execution engine: interleaved query timelines with contention.

The serialized serving loop (:meth:`repro.serving.InferenceServer._serve_exact`)
executes each admitted unit to completion before the next admission touches
the shared timeline, so overlapping queries never contend for queues, topics,
buckets, or FaaS capacity.  This package closes that gap:

* :mod:`repro.concurrency.config` -- :class:`ContentionConfig` (per-class
  channel capacities plus the platform-wide FaaS invocation quota) and
  :class:`ConcurrencyConfig`, the opt-in knob on
  :class:`~repro.serving.ServingConfig`.
* :mod:`repro.concurrency.arbiter` -- the deterministic processor-sharing
  :class:`FairShareArbiter`: an op overlapping ``k`` peers on a resource of
  capacity ``c < k`` progresses at rate ``c/k``, recomputed at every
  entry/exit boundary.
* :mod:`repro.concurrency.interleave` -- the discrete-event interleaver that
  decomposes each admitted unit's replay into timed sub-events and merges all
  in-flight queries' sub-event streams onto the server heap.

Gating contract (the same rule every opt-in subsystem follows):
``ServingConfig(concurrency=None)`` -- the default -- and an enabled engine
with an unbounded :class:`ContentionConfig` are **byte-identical** to the
serialized loop: identical records, identical summaries, every historical
``BENCH_*.json`` fingerprint unchanged.  Only finite capacities can stretch
timelines, and only then does the report grow a ``"concurrency"`` key.

:mod:`~repro.concurrency.interleave` is imported lazily by the server (it
imports serving symbols back); importing this package pulls in configs and
the arbiter only.
"""

from .arbiter import FairShareArbiter
from .config import ConcurrencyConfig, ContentionConfig

__all__ = [
    "ConcurrencyConfig",
    "ContentionConfig",
    "FairShareArbiter",
]

"""Contention and concurrency configuration for the interleaved engine.

Both configs are frozen and picklable so they can ride through campaign
cells into process-pool executors, exactly like
:class:`~repro.chaos.ChaosConfig`.

Capacities are expressed in *concurrent full-rate transfers*: a resource
with capacity ``c`` serves up to ``c`` overlapping ops at their solo
latency; ``k > c`` overlapping ops each progress at rate ``c/k``
(processor sharing).  ``None`` means infinite capacity -- the arbiter
never stretches anything and the interleaved replay is byte-identical to
the serialized loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ContentionConfig", "ConcurrencyConfig"]

#: resource-key class prefixes understood by :meth:`ContentionConfig.capacity_for`.
#: Channel resources are namespaced per in-flight query
#: (``"queue:q7:fsd-...-q3"``), so channel capacities bind *within* a query's
#: worker tree (logical isolation across queries is preserved); the ``"faas"``
#: resource is platform-global, so the invocation quota binds *across* queries.
RESOURCE_CLASSES = ("queue", "pubsub", "object", "faas")


@dataclass(frozen=True)
class ContentionConfig:
    """Per-class channel capacities plus the platform FaaS invocation quota.

    The default -- every capacity ``None`` -- is the *unbounded* arbiter:
    observationally identical to the serialized loop, adding nothing to any
    summary or fingerprint.
    """

    #: concurrent full-rate transfers per queue (send/receive round-trips).
    queue_capacity: Optional[float] = None
    #: concurrent full-rate publishes per pub/sub topic.
    topic_capacity: Optional[float] = None
    #: concurrent full-rate object transfers per bucket (put/get/list).
    bucket_capacity: Optional[float] = None
    #: platform-wide concurrent-invocation quota shared by *all* in-flight
    #: queries; the one resource that is never namespaced per query.
    faas_invocations: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("queue_capacity", "topic_capacity", "bucket_capacity", "faas_invocations"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValueError(f"{name} must be positive (or None for infinite); got {value!r}")

    @property
    def is_bounded(self) -> bool:
        """Whether any capacity is finite (only then can timelines stretch)."""
        return any(
            getattr(self, name) is not None
            for name in ("queue_capacity", "topic_capacity", "bucket_capacity", "faas_invocations")
        )

    def class_capacity(self, resource_class: str) -> Optional[float]:
        """Capacity for a resource class (``"queue"``/``"pubsub"``/``"object"``/``"faas"``)."""
        if resource_class == "queue":
            return self.queue_capacity
        if resource_class == "pubsub":
            return self.topic_capacity
        if resource_class == "object":
            return self.bucket_capacity
        if resource_class == "faas":
            return self.faas_invocations
        return None

    def capacity_for(self, resource: str) -> Optional[float]:
        """Capacity for a namespaced resource key (``"queue:q7:<name>"``)."""
        return self.class_capacity(resource.partition(":")[0])

    def describe(self) -> Dict[str, Optional[float]]:
        """Stable JSON-friendly form (sorted keys, used in summaries)."""
        return {
            "bucket_capacity": self.bucket_capacity,
            "faas_invocations": self.faas_invocations,
            "queue_capacity": self.queue_capacity,
            "topic_capacity": self.topic_capacity,
        }


@dataclass(frozen=True)
class ConcurrencyConfig:
    """Opt into the interleaved execution engine (``ServingConfig.concurrency``).

    Holding the engine's knobs in their own config (rather than flattening
    them into :class:`~repro.serving.ServingConfig`) keeps the gating contract
    one attribute: ``concurrency is None`` selects the serialized loop,
    anything else the interleaver.
    """

    #: the contention model applied to collected channel/FaaS ops.  The
    #: default unbounded config interleaves timelines without ever
    #: stretching one -- byte-identical to the serialized loop.
    contention: ContentionConfig = field(default_factory=ContentionConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.contention, ContentionConfig):
            raise TypeError("contention must be a ContentionConfig")

    def describe(self) -> Dict[str, object]:
        return {"contention": self.contention.describe()}

"""Simple partitioning schemes: random and contiguous row blocks.

``RandomPartitioner`` reproduces the paper's "RP" baseline (PaToH's random
partitioning mode, Table III); ``ContiguousPartitioner`` is the naive
block-of-rows scheme that simpler distributed inference systems use.
Both balance the number of neurons per worker exactly (up to remainder), but
make no attempt to reduce inter-worker communication.
"""

from __future__ import annotations

import numpy as np

from ..model import SparseDNN
from .base import Partitioner

__all__ = ["RandomPartitioner", "ContiguousPartitioner"]


def _chunk_sizes(total: int, parts: int) -> np.ndarray:
    """Sizes of ``parts`` chunks covering ``total`` items as evenly as possible."""
    base = total // parts
    remainder = total % parts
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:remainder] += 1
    return sizes


class RandomPartitioner(Partitioner):
    """Randomly permute neurons, then split into equal chunks (the paper's RP)."""

    name = "RP"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def assign(self, model: SparseDNN, num_workers: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        permutation = rng.permutation(model.num_neurons)
        owner = np.empty(model.num_neurons, dtype=np.int64)
        sizes = _chunk_sizes(model.num_neurons, num_workers)
        start = 0
        for part, size in enumerate(sizes):
            owner[permutation[start:start + size]] = part
            start += size
        return owner


class ContiguousPartitioner(Partitioner):
    """Assign contiguous index ranges of neurons to workers."""

    name = "contiguous"

    def assign(self, model: SparseDNN, num_workers: int) -> np.ndarray:
        owner = np.empty(model.num_neurons, dtype=np.int64)
        sizes = _chunk_sizes(model.num_neurons, num_workers)
        start = 0
        for part, size in enumerate(sizes):
            owner[start:start + size] = part
            start += size
        return owner

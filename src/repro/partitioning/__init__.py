"""Model partitioning: ownership assignment, send/recv maps and quality metrics."""

from .base import Partitioner, aggregate_connectivity, balanced_capacities
from .hypergraph import HypergraphPartitioner, PartitionQuality, cut_weight
from .metrics import PartitionMetrics, compare_plans, evaluate_plan
from .plan import LayerCommMaps, LayerKernels, PartitionPlan, build_partition_plan
from .simple import ContiguousPartitioner, RandomPartitioner

__all__ = [
    "Partitioner",
    "aggregate_connectivity",
    "balanced_capacities",
    "HypergraphPartitioner",
    "PartitionQuality",
    "cut_weight",
    "PartitionMetrics",
    "compare_plans",
    "evaluate_plan",
    "LayerCommMaps",
    "LayerKernels",
    "PartitionPlan",
    "build_partition_plan",
    "ContiguousPartitioner",
    "RandomPartitioner",
]

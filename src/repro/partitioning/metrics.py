"""Static quality metrics of a partition plan.

These metrics are structural (derived from the plan alone, independent of the
runtime activations): how many activation rows must cross worker boundaries
per layer, how balanced the per-worker compute load is, and how many
worker-pair connections each layer requires.  The *dynamic* counterparts
(actual bytes sent, NNZ per target -- the columns of Table III) are captured
at run time by ``repro.core.metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .plan import PartitionPlan

__all__ = ["PartitionMetrics", "evaluate_plan", "compare_plans"]


@dataclass(frozen=True)
class PartitionMetrics:
    """Structural metrics of one partition plan."""

    partitioner: str
    num_workers: int
    total_rows_transferred: int
    rows_transferred_per_layer: tuple
    avg_rows_per_worker_pair: float
    worker_pairs_per_layer: float
    load_imbalance: float
    max_worker_nnz: int
    min_worker_nnz: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "partitioner": self.partitioner,
            "num_workers": self.num_workers,
            "total_rows_transferred": self.total_rows_transferred,
            "avg_rows_per_worker_pair": self.avg_rows_per_worker_pair,
            "worker_pairs_per_layer": self.worker_pairs_per_layer,
            "load_imbalance": self.load_imbalance,
            "max_worker_nnz": self.max_worker_nnz,
            "min_worker_nnz": self.min_worker_nnz,
        }


def evaluate_plan(plan: PartitionPlan) -> PartitionMetrics:
    """Compute structural quality metrics for ``plan``."""
    per_layer = plan.rows_transferred_per_layer()
    pairs = [maps.message_pairs() for maps in plan.comm_maps]
    total_pairs = sum(pairs)
    total_rows = sum(per_layer)
    worker_nnz = [plan.worker_weight_nnz(m) for m in range(plan.num_workers)]
    return PartitionMetrics(
        partitioner=plan.partitioner_name,
        num_workers=plan.num_workers,
        total_rows_transferred=total_rows,
        rows_transferred_per_layer=tuple(per_layer),
        avg_rows_per_worker_pair=(total_rows / total_pairs) if total_pairs else 0.0,
        worker_pairs_per_layer=(total_pairs / len(pairs)) if pairs else 0.0,
        load_imbalance=plan.load_imbalance(),
        max_worker_nnz=max(worker_nnz) if worker_nnz else 0,
        min_worker_nnz=min(worker_nnz) if worker_nnz else 0,
    )


def compare_plans(plans: List[PartitionPlan]) -> Dict[str, PartitionMetrics]:
    """Evaluate several plans (e.g. HGP-DNN vs RP) keyed by partitioner name."""
    return {plan.partitioner_name: evaluate_plan(plan) for plan in plans}

"""Partitioner interface and shared helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np
from scipy import sparse

from ..model import SparseDNN
from ..sparse import as_csr
from .plan import PartitionPlan, build_partition_plan

__all__ = ["Partitioner", "aggregate_connectivity", "balanced_capacities"]


class Partitioner(ABC):
    """Produces a neuron-ownership vector for a model and worker count."""

    #: human-readable scheme name (appears in plans, reports and Table III).
    name: str = "base"

    @abstractmethod
    def assign(self, model: SparseDNN, num_workers: int) -> np.ndarray:
        """Return ``owner``: an int array of length ``model.num_neurons``."""

    def partition(self, model: SparseDNN, num_workers: int) -> PartitionPlan:
        """Assign ownership and derive the full :class:`PartitionPlan`."""
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if num_workers > model.num_neurons:
            raise ValueError(
                f"cannot split {model.num_neurons} neurons over {num_workers} workers"
            )
        owner = self.assign(model, num_workers)
        return build_partition_plan(model, owner, num_workers, partitioner_name=self.name)


def aggregate_connectivity(model: SparseDNN) -> sparse.csr_matrix:
    """Symmetric aggregated neuron-connectivity graph of a model.

    Entry ``(i, j)`` counts, over all layers, how often neuron ``i``'s weight
    row references column ``j`` (plus the transpose).  This is the graph
    approximation of the paper's column-net hypergraph: an edge crossing the
    partition corresponds to an activation row that must be communicated.
    """
    n = model.num_neurons
    pattern = sparse.csr_matrix((n, n), dtype=np.float64)
    for weight in model.weights:
        weight = as_csr(weight)
        binary = weight.copy()
        binary.data = np.ones_like(binary.data, dtype=np.float64)
        pattern = pattern + binary
    symmetric = pattern + pattern.T
    symmetric.setdiag(0)
    symmetric.eliminate_zeros()
    return symmetric.tocsr()


def balanced_capacities(total_weight: float, num_parts: int, epsilon: float = 0.05) -> float:
    """Maximum part weight under an ``epsilon`` imbalance tolerance."""
    if num_parts < 1:
        raise ValueError("num_parts must be at least 1")
    return (total_weight / num_parts) * (1.0 + epsilon)

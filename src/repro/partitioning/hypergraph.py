"""HGP-DNN: connectivity-minimising hypergraph partitioning of sparse DNNs.

The paper partitions models offline with PaToH [12, 70]; PaToH is a
closed-source binary, so this module implements an equivalent multilevel-style
partitioner in pure numpy/scipy.  The goal function is the same as the
paper's: minimise the volume of activation rows that must cross worker
boundaries at inference time, while keeping the per-worker weight nonzeros
balanced.

Algorithm (all deterministic given the seed):

1. **Aggregate** the model's layer patterns into a symmetric neuron
   connectivity graph (the graph approximation of the column-net hypergraph;
   an edge whose endpoints live on different workers corresponds to an
   activation row that must be shipped every time that layer runs).
2. **Cluster**: grow connectivity-dense clusters of bounded size around seed
   vertices (greedy agglomeration), which plays the role of the coarsening
   phase of a multilevel partitioner.
3. **Map clusters to parts**: clusters are assigned greedily to the part they
   are most connected to, subject to a balance constraint on total vertex
   weight (weight = row nonzeros summed over layers).
4. **Refine**: several balanced label-propagation passes move individual
   neurons to the part they are most connected to whenever the move reduces
   the connectivity cut and keeps the balance within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from ..model import SparseDNN
from ..sparse import as_csr
from .base import Partitioner, aggregate_connectivity, balanced_capacities

__all__ = ["HypergraphPartitioner", "PartitionQuality", "cut_weight"]


@dataclass(frozen=True)
class PartitionQuality:
    """Diagnostics of a finished partitioning run."""

    cut_weight: float
    total_edge_weight: float
    load_imbalance: float
    refinement_passes: int
    moves_applied: int

    @property
    def cut_fraction(self) -> float:
        if self.total_edge_weight == 0:
            return 0.0
        return self.cut_weight / self.total_edge_weight


def cut_weight(adjacency: sparse.csr_matrix, owner: np.ndarray) -> float:
    """Total weight of edges whose endpoints are on different parts."""
    adjacency = as_csr(adjacency)
    coo = adjacency.tocoo()
    crossing = owner[coo.row] != owner[coo.col]
    # The adjacency is symmetric, so each undirected edge is counted twice.
    return float(coo.data[crossing].sum() / 2.0)


class HypergraphPartitioner(Partitioner):
    """HGP-DNN partitioner (the paper's hypergraph partitioning scheme)."""

    name = "HGP-DNN"

    def __init__(
        self,
        epsilon: float = 0.05,
        clusters_per_part: int = 4,
        refinement_passes: int = 6,
        max_moves_fraction: float = 0.25,
        seed: int = 0,
    ):
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if clusters_per_part < 1:
            raise ValueError("clusters_per_part must be at least 1")
        self.epsilon = epsilon
        self.clusters_per_part = clusters_per_part
        self.refinement_passes = refinement_passes
        self.max_moves_fraction = max_moves_fraction
        self.seed = seed
        self.last_quality: Optional[PartitionQuality] = None

    # -- public API ------------------------------------------------------------------

    def assign(self, model: SparseDNN, num_workers: int) -> np.ndarray:
        adjacency = aggregate_connectivity(model)
        vertex_weights = self._vertex_weights(model)
        if num_workers == 1:
            owner = np.zeros(model.num_neurons, dtype=np.int64)
            self.last_quality = PartitionQuality(0.0, float(adjacency.sum() / 2.0), 1.0, 0, 0)
            return owner

        clusters = self._grow_clusters(adjacency, vertex_weights, num_workers)
        owner = self._map_clusters_to_parts(adjacency, vertex_weights, clusters, num_workers)
        owner, passes, moves = self._refine(adjacency, vertex_weights, owner, num_workers)

        loads = np.bincount(owner, weights=vertex_weights, minlength=num_workers)
        mean_load = loads.mean() if loads.mean() > 0 else 1.0
        self.last_quality = PartitionQuality(
            cut_weight=cut_weight(adjacency, owner),
            total_edge_weight=float(adjacency.sum() / 2.0),
            load_imbalance=float(loads.max() / mean_load),
            refinement_passes=passes,
            moves_applied=moves,
        )
        return owner

    # -- phase 1: vertex weights -----------------------------------------------------

    @staticmethod
    def _vertex_weights(model: SparseDNN) -> np.ndarray:
        """Per-neuron computational weight: stored nonzeros across all layers."""
        weights = np.zeros(model.num_neurons, dtype=np.float64)
        for weight in model.weights:
            weights += np.diff(as_csr(weight).indptr)
        # Avoid zero-weight vertices so balance constraints remain meaningful.
        weights[weights == 0] = 1.0
        return weights

    # -- phase 2: cluster growing (coarsening) ------------------------------------------

    def _grow_clusters(
        self,
        adjacency: sparse.csr_matrix,
        vertex_weights: np.ndarray,
        num_workers: int,
    ) -> np.ndarray:
        n = adjacency.shape[0]
        num_clusters = min(n, num_workers * self.clusters_per_part)
        target_size = balanced_capacities(vertex_weights.sum(), num_clusters, self.epsilon)

        cluster_of = np.full(n, -1, dtype=np.int64)
        degree_order = np.argsort(-np.asarray(adjacency.sum(axis=1)).ravel())
        indptr, neighbours, weights = adjacency.indptr, adjacency.indices, adjacency.data
        in_frontier = np.zeros(n, dtype=bool)
        next_cluster = 0

        for seed_vertex in degree_order:
            if cluster_of[seed_vertex] != -1:
                continue
            if next_cluster >= num_clusters:
                break
            cluster_id = next_cluster
            next_cluster += 1
            cluster_of[seed_vertex] = cluster_id
            cluster_weight = vertex_weights[seed_vertex]

            # Connectivity of every vertex to the growing cluster, plus an
            # explicit frontier of candidate vertices.  The previous
            # implementation ran an argmax over all n vertices per absorbed
            # vertex (O(n) each, O(n^2) per cluster); only vertices adjacent
            # to the cluster can ever have positive connectivity, so the
            # argmax needs to scan just the frontier.  Ties pick the lowest
            # vertex index, exactly like np.argmax's first-maximum rule, and
            # the floating-point accumulation into ``connectivity`` happens in
            # the same per-absorption order, so the grown clusters (and the
            # final ownership vector) are bit-for-bit identical.
            connectivity = np.zeros(n, dtype=np.float64)

            def absorb_neighbours(vertex: int) -> None:
                """Fold ``vertex``'s edges into the frontier connectivity.

                Only unassigned neighbours accumulate (and can enter the
                frontier): the seed implementation added to every neighbour
                but masked assigned vertices to 0.0 before its argmax, so
                their connectivity values were never read -- skipping the
                writes leaves every *read* value bit-identical.
                """
                nonlocal frontier
                start, stop = indptr[vertex], indptr[vertex + 1]
                adjacent = neighbours[start:stop]
                unassigned_mask = cluster_of[adjacent] == -1
                targets = adjacent[unassigned_mask]
                connectivity[targets] += weights[start:stop][unassigned_mask]
                fresh = targets[~in_frontier[targets]]
                if fresh.size:
                    in_frontier[fresh] = True
                    frontier = np.concatenate([frontier, fresh])

            frontier = np.empty(0, dtype=neighbours.dtype)
            absorb_neighbours(seed_vertex)

            while cluster_weight < target_size and frontier.size:
                values = connectivity[frontier]
                best = values.max()
                if best <= 0.0:
                    # Absorbed vertices stay in the frontier with their
                    # connectivity zeroed (the seed masked them to 0.0 the
                    # same way), so a non-positive maximum means no unassigned
                    # neighbour is left -- identical break condition.
                    break
                candidate = int(frontier[values == best].min())
                cluster_of[candidate] = cluster_id
                connectivity[candidate] = 0.0
                cluster_weight += vertex_weights[candidate]
                absorb_neighbours(candidate)
            in_frontier[frontier] = False

        # Any vertices left unassigned (isolated or overflow) join the lightest cluster
        # they are connected to, or round-robin if they have no connections.
        unassigned = np.flatnonzero(cluster_of == -1)
        if unassigned.size:
            cluster_weights = np.bincount(
                cluster_of[cluster_of >= 0], weights=vertex_weights[cluster_of >= 0],
                minlength=max(next_cluster, 1),
            )
            for vertex in unassigned:
                row = adjacency.getrow(vertex)
                neighbour_clusters = cluster_of[row.indices]
                neighbour_clusters = neighbour_clusters[neighbour_clusters >= 0]
                if neighbour_clusters.size:
                    counts = np.bincount(neighbour_clusters, minlength=max(next_cluster, 1))
                    cluster_id = int(counts.argmax())
                else:
                    cluster_id = int(cluster_weights.argmin())
                cluster_of[vertex] = cluster_id
                cluster_weights[cluster_id] += vertex_weights[vertex]
        return cluster_of

    # -- phase 3: cluster -> part mapping ------------------------------------------------

    def _map_clusters_to_parts(
        self,
        adjacency: sparse.csr_matrix,
        vertex_weights: np.ndarray,
        cluster_of: np.ndarray,
        num_workers: int,
    ) -> np.ndarray:
        num_clusters = int(cluster_of.max()) + 1
        n = adjacency.shape[0]

        # Cluster-level aggregated graph: indicator^T @ A @ indicator.
        indicator = sparse.csr_matrix(
            (np.ones(n), (np.arange(n), cluster_of)), shape=(n, num_clusters)
        )
        cluster_adjacency = (indicator.T @ adjacency @ indicator).toarray()
        np.fill_diagonal(cluster_adjacency, 0.0)
        cluster_weights = np.asarray(
            indicator.T @ vertex_weights.reshape(-1, 1)
        ).ravel()

        # Greedy part growing over the cluster graph: each part is grown from a
        # heavy seed cluster by repeatedly absorbing the unassigned cluster with
        # the strongest connectivity to the part, until the balance capacity is
        # reached.  This keeps strongly-connected cluster neighbourhoods on the
        # same worker (the property Table III depends on).
        target = vertex_weights.sum() / num_workers
        capacity = balanced_capacities(vertex_weights.sum(), num_workers, self.epsilon)
        part_of_cluster = np.full(num_clusters, -1, dtype=np.int64)
        part_loads = np.zeros(num_workers, dtype=np.float64)

        for part in range(num_workers):
            unassigned = np.flatnonzero(part_of_cluster < 0)
            if unassigned.size == 0:
                break
            seed = unassigned[int(np.argmax(cluster_weights[unassigned]))]
            part_of_cluster[seed] = part
            part_loads[part] = cluster_weights[seed]
            connectivity = cluster_adjacency[seed].copy()
            while part_loads[part] < target:
                unassigned = np.flatnonzero(part_of_cluster < 0)
                if unassigned.size == 0:
                    break
                best = unassigned[int(np.argmax(connectivity[unassigned]))]
                if part_loads[part] + cluster_weights[best] > capacity:
                    break
                part_of_cluster[best] = part
                part_loads[part] += cluster_weights[best]
                connectivity += cluster_adjacency[best]

        # Any clusters left over (capacity rounding) go to the least-loaded part.
        for cluster in np.flatnonzero(part_of_cluster < 0):
            part = int(part_loads.argmin())
            part_of_cluster[cluster] = part
            part_loads[part] += cluster_weights[cluster]

        return part_of_cluster[cluster_of]

    # -- phase 4: refinement ----------------------------------------------------------------

    def _refine(
        self,
        adjacency: sparse.csr_matrix,
        vertex_weights: np.ndarray,
        owner: np.ndarray,
        num_workers: int,
    ) -> tuple:
        n = adjacency.shape[0]
        owner = owner.copy()
        capacity = balanced_capacities(vertex_weights.sum(), num_workers, self.epsilon)
        loads = np.bincount(owner, weights=vertex_weights, minlength=num_workers).astype(float)
        max_moves = max(1, int(self.max_moves_fraction * n))
        total_moves = 0
        passes_run = 0

        for _ in range(self.refinement_passes):
            passes_run += 1
            indicator = sparse.csr_matrix(
                (np.ones(n), (np.arange(n), owner)), shape=(n, num_workers)
            )
            # connectivity[v, p] = total edge weight between v and part p.
            connectivity = np.asarray((adjacency @ indicator).todense())
            current = connectivity[np.arange(n), owner]
            best_part = connectivity.argmax(axis=1)
            best_value = connectivity[np.arange(n), best_part]
            gains = best_value - current
            candidates = np.flatnonzero((gains > 0) & (best_part != owner))
            if candidates.size == 0:
                break
            # Apply the highest-gain moves first, respecting the balance constraint.
            candidates = candidates[np.argsort(-gains[candidates])][:max_moves]
            moves_this_pass = 0
            for vertex in candidates:
                source = owner[vertex]
                target = int(best_part[vertex])
                weight = vertex_weights[vertex]
                if loads[target] + weight > capacity:
                    continue
                # Never empty a part completely.
                if loads[source] - weight <= 0:
                    continue
                owner[vertex] = target
                loads[source] -= weight
                loads[target] += weight
                moves_this_pass += 1
            total_moves += moves_this_pass
            if moves_this_pass == 0:
                break

        return owner, passes_run, total_moves

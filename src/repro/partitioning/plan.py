"""Partition plans: who owns which neuron rows, and who talks to whom.

FSD-Inference parallelises a model through row-wise partitioning of the
weight matrices and activation vectors (Section III-C).  A
:class:`PartitionPlan` captures the offline output of that step:

* an *ownership vector* assigning every neuron row to a worker (the same
  neuron partition is applied at every layer, as in the paper's
  row-block formulation);
* per-layer, per-worker weight row blocks ``W^k_m``;
* per-layer send maps ``Xsend^k_m`` (target worker -> global activation rows
  this worker must ship to it) and receive maps ``Xrecv^k_m`` (source worker
  -> global activation rows expected from it).

The send/receive maps are derived purely from the sparsity structure of the
weights, exactly as the hypergraph-partitioning pre-processing in the paper
provides them to each worker before inference starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np
from scipy import sparse

from ..model import SparseDNN
from ..sparse import RowBlock, as_csr, csr_nbytes

__all__ = ["LayerCommMaps", "LayerKernels", "PartitionPlan", "build_partition_plan"]


@dataclass
class LayerCommMaps:
    """Send and receive maps of one layer.

    ``send[m][n]`` is the array of global activation-row indices worker ``m``
    must send to worker ``n`` before layer ``k`` can complete;
    ``recv[m][n]`` is the mirror image.
    """

    send: List[Dict[int, np.ndarray]]
    recv: List[Dict[int, np.ndarray]]

    def total_rows_transferred(self) -> int:
        return int(sum(len(rows) for worker in self.send for rows in worker.values()))

    def message_pairs(self) -> int:
        """Number of (source, target) pairs that exchange data in this layer."""
        return sum(len(worker) for worker in self.send)


@dataclass(frozen=True)
class LayerKernels:
    """Compacted-column compute kernels of one (layer, worker) pair.

    The simulator's hot path operates in *local* dimensions: ``local`` is the
    worker's weight block with columns restricted (in ascending global order)
    to the rows the worker itself owns, so it multiplies directly against the
    worker's own activation block; ``by_source[s]`` restricts the columns to
    the rows received from source ``s`` (in the receive-map order the channel
    delivers them), so a received block multiplies without ever being
    scattered back into the global neuron dimension.  Because the column
    subsets preserve the weight's ascending column order, every product is
    bit-for-bit identical to the seed's global-dimension formulation.
    """

    local: sparse.csr_matrix
    by_source: Dict[int, sparse.csr_matrix]
    recv_rows: Dict[int, np.ndarray]


@dataclass
class PartitionPlan:
    """The complete offline partitioning artefact for one (model, P) pair."""

    model_name: str
    num_workers: int
    owner: np.ndarray
    weight_blocks: List[List[RowBlock]]
    comm_maps: List[LayerCommMaps]
    partitioner_name: str = "unknown"
    #: lazily-built caches; not part of the plan's identity.
    _rows_cache: Dict[int, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _kernel_cache: Dict[tuple, LayerKernels] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: encoded staging payloads, filled by the engine; keyed by
    #: (staged model name, compress).  Tied to the plan object so distinct
    #: plans can never serve each other's payloads.
    staged_payload_cache: Dict[tuple, list] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # -- structural properties ------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.weight_blocks)

    @property
    def num_neurons(self) -> int:
        return len(self.owner)

    def worker_rows(self, worker: int) -> np.ndarray:
        """Global neuron rows owned by ``worker`` (cached; do not mutate)."""
        rows = self._rows_cache.get(worker)
        if rows is None:
            rows = np.flatnonzero(self.owner == worker)
            self._rows_cache[worker] = rows
        return rows

    def layer_kernels(self, layer: int, worker: int) -> LayerKernels:
        """Compacted compute kernels for ``(layer, worker)`` (cached).

        Slicing the weight block down to the columns it can ever pair with is
        done once per plan and amortised across runs; the slices keep the
        ascending column order of the original block, which preserves the
        floating-point accumulation order of every SpMM (see
        :class:`LayerKernels`).
        """
        key = (layer, worker)
        kernels = self._kernel_cache.get(key)
        if kernels is None:
            weight = self.weight_blocks[layer][worker].local
            recv = self.recv_map(layer, worker)
            kernels = LayerKernels(
                local=weight[:, self.worker_rows(worker)],
                by_source={source: weight[:, rows] for source, rows in recv.items()},
                recv_rows={source: rows for source, rows in recv.items()},
            )
            self._kernel_cache[key] = kernels
        return kernels

    def worker_weight_nnz(self, worker: int) -> int:
        return int(sum(self.weight_blocks[k][worker].nnz for k in range(self.num_layers)))

    def worker_weight_bytes(self, worker: int) -> int:
        return int(sum(self.weight_blocks[k][worker].nbytes() for k in range(self.num_layers)))

    def load_imbalance(self) -> float:
        """max(worker nnz) / mean(worker nnz); 1.0 means perfect balance."""
        loads = np.array([self.worker_weight_nnz(m) for m in range(self.num_workers)], dtype=float)
        mean = loads.mean()
        if mean == 0:
            return 1.0
        return float(loads.max() / mean)

    def total_rows_transferred(self) -> int:
        """Total activation-row transfers implied by the send maps (all layers)."""
        return sum(maps.total_rows_transferred() for maps in self.comm_maps)

    def rows_transferred_per_layer(self) -> List[int]:
        return [maps.total_rows_transferred() for maps in self.comm_maps]

    def send_map(self, layer: int, worker: int) -> Dict[int, np.ndarray]:
        return self.comm_maps[layer].send[worker]

    def recv_map(self, layer: int, worker: int) -> Dict[int, np.ndarray]:
        return self.comm_maps[layer].recv[worker]

    def summary(self) -> Dict[str, float]:
        """Headline statistics (useful in reports and tests)."""
        return {
            "num_workers": self.num_workers,
            "num_layers": self.num_layers,
            "num_neurons": self.num_neurons,
            "total_rows_transferred": self.total_rows_transferred(),
            "load_imbalance": self.load_imbalance(),
            "partitioner": self.partitioner_name,
        }


def build_partition_plan(
    model: SparseDNN,
    owner: Sequence[int],
    num_workers: int,
    partitioner_name: str = "unknown",
) -> PartitionPlan:
    """Derive the full :class:`PartitionPlan` from an ownership vector.

    For every layer ``k`` and worker ``m`` the plan contains the weight row
    block ``W^k_m`` and the send/receive maps: worker ``n`` needs activation
    row ``j`` of ``x^{k-1}`` whenever any of its weight rows has a stored
    entry in column ``j``; if ``j`` is owned by a different worker ``m``,
    then ``m`` must send it and ``n`` must receive it.
    """
    owner = np.asarray(owner, dtype=np.int64)
    if owner.shape[0] != model.num_neurons:
        raise ValueError(
            f"ownership vector covers {owner.shape[0]} neurons but the model has "
            f"{model.num_neurons}"
        )
    if owner.size and (owner.min() < 0 or owner.max() >= num_workers):
        raise ValueError("ownership vector references a worker outside [0, num_workers)")

    weight_blocks: List[List[RowBlock]] = []
    comm_maps: List[LayerCommMaps] = []

    for k, weight in enumerate(model.weights):
        weight = as_csr(weight)
        blocks: List[RowBlock] = []
        send: List[Dict[int, np.ndarray]] = [dict() for _ in range(num_workers)]
        recv: List[Dict[int, np.ndarray]] = [dict() for _ in range(num_workers)]

        for m in range(num_workers):
            rows = np.flatnonzero(owner == m)
            block = RowBlock(global_rows=rows, local=weight[rows, :])
            blocks.append(block)

            # Columns this worker needs for layer k = union of stored column
            # indices across its weight rows.
            needed_cols = np.unique(block.local.indices) if block.nnz else np.empty(0, dtype=np.int64)
            if needed_cols.size == 0:
                continue
            col_owners = owner[needed_cols]
            remote_mask = col_owners != m
            remote_cols = needed_cols[remote_mask]
            remote_owners = col_owners[remote_mask]
            for source in np.unique(remote_owners):
                rows_from_source = remote_cols[remote_owners == source]
                recv[m][int(source)] = rows_from_source.astype(np.int64)

        # Mirror the receive maps into send maps.
        for target in range(num_workers):
            for source, rows in recv[target].items():
                send[source][target] = rows

        weight_blocks.append(blocks)
        comm_maps.append(LayerCommMaps(send=send, recv=recv))

    return PartitionPlan(
        model_name=model.name,
        num_workers=num_workers,
        owner=owner,
        weight_blocks=weight_blocks,
        comm_maps=comm_maps,
        partitioner_name=partitioner_name,
    )

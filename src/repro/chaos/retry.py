"""Seeded retry policy: exponential backoff with deterministic jitter.

The policy is a frozen dataclass of primitives and carries **no mutable
state** -- the jitter for one backoff is derived from ``(seed, attempt,
token)`` through a throwaway ``numpy`` generator, so two call sites retrying
with the same policy never perturb each other, and a campaign cell replayed
in a thread pool or a process pool produces identical retry schedules.
Retryability is decided by the error's own ``retryable`` classification
(see :mod:`repro.cloud.errors`), never by string matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and a max-attempt cap.

    ``max_attempts`` counts the initial attempt: ``max_attempts=3`` means at
    most two retries.  The backoff before retry ``attempt + 1`` is
    ``initial * multiplier ** (attempt - 1)``, clamped to ``max_backoff``,
    then scaled by a jitter factor uniform in ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    initial_backoff_seconds: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 30.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.initial_backoff_seconds < 0:
            raise ValueError("initial_backoff_seconds cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if self.seed < 0:
            raise ValueError("seed cannot be negative")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether ``error``, raised on 1-based ``attempt``, warrants a retry."""
        if attempt >= self.max_attempts:
            return False
        return bool(getattr(error, "retryable", False))

    def backoff_seconds(self, attempt: int, token: int = 0) -> float:
        """Deterministic backoff before retrying after 1-based ``attempt``.

        ``token`` distinguishes independent retry streams (e.g. the query id
        or a running retry counter) so concurrent retries do not share one
        jitter draw.
        """
        if attempt < 1:
            raise ValueError("attempt numbering is 1-based")
        base = self.initial_backoff_seconds * self.backoff_multiplier ** (attempt - 1)
        base = min(base, self.max_backoff_seconds)
        if self.jitter == 0.0:
            return base
        rng = np.random.default_rng([self.seed, attempt, max(0, int(token))])
        factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base * factor

    def describe(self) -> Dict[str, object]:
        """JSON-friendly identity for benchmark fingerprints."""
        return {
            "max_attempts": self.max_attempts,
            "initial_backoff_seconds": self.initial_backoff_seconds,
            "backoff_multiplier": self.backoff_multiplier,
            "max_backoff_seconds": self.max_backoff_seconds,
            "jitter": self.jitter,
            "seed": self.seed,
        }

"""Seeded fault processes and the deterministic plans they materialise into.

A :class:`FaultPlan` is the declarative identity of one chaos configuration:
a tuple of :class:`FaultProcess` generators plus one seed.  Materialising a
plan against a workload horizon produces a sorted list of
:class:`FaultEvent` objects -- the *entire* fault schedule, fixed before the
replay starts -- which the :class:`~repro.chaos.FaultInjector` then consumes
as the serving layer drives service calls past the event timestamps.

Determinism contract: a plan's events depend only on ``(processes, seed,
horizon)``.  All randomness flows through one ``numpy`` generator seeded
from the plan, consumed in process order, so the same plan produces the
same fault timestamps on every run, machine and executor kind.  Every
process (and the plan) is a frozen dataclass of primitives: hashable,
picklable, and safe to ship to process-pool campaign workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "FaultEvent",
    "PoissonFaultProcess",
    "ScheduledFaults",
    "PreemptionWindows",
    "ColdStartStorm",
    "FaultPlan",
]

#: service names the interception points understand.
FAULT_SERVICES = ("faas", "queue", "pubsub", "object", "block")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the shared timeline.

    ``kind`` is one of ``"transient"`` (the next matching service call at or
    after ``time`` fails once), ``"preemption"`` (FaaS capacity is lost for
    ``[time, time + duration)``: new invocations are rejected and running
    ones are killed) or ``"deploy"`` (every warm execution environment is
    flushed -- a cold-start storm).  ``resource`` is a substring filter on
    the resource name (``None`` matches everything).
    """

    time: float
    kind: str
    service: Optional[str] = None
    resource: Optional[str] = None
    duration: float = 0.0

    def matches_resource(self, resource: Optional[str]) -> bool:
        if self.resource is None:
            return True
        return resource is not None and self.resource in resource


@dataclass(frozen=True)
class PoissonFaultProcess:
    """Transient errors arriving as a homogeneous Poisson process.

    Models the background 5xx rate of one service: the number of faults over
    the horizon is Poisson with mean ``rate_per_hour * horizon``, their
    times uniform over the horizon (order statistics).  Each fault fails the
    first matching service call at or after its timestamp, once.
    """

    service: str
    rate_per_hour: float
    resource: Optional[str] = None

    name: str = field(default="poisson-transient", init=False)

    def __post_init__(self) -> None:
        if self.service not in FAULT_SERVICES:
            raise ValueError(
                f"unknown fault service {self.service!r}; known: {FAULT_SERVICES}"
            )
        if self.rate_per_hour < 0:
            raise ValueError("rate_per_hour cannot be negative")

    def events(self, horizon_seconds: float, rng: np.random.Generator) -> List[FaultEvent]:
        count = int(rng.poisson(self.rate_per_hour * horizon_seconds / 3600.0))
        times = np.sort(rng.uniform(0.0, horizon_seconds, size=count))
        return [
            FaultEvent(time=float(t), kind="transient", service=self.service, resource=self.resource)
            for t in times
        ]

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "service": self.service,
            "rate_per_hour": self.rate_per_hour,
            "resource": self.resource,
        }


@dataclass(frozen=True)
class ScheduledFaults:
    """Transient errors at explicit timestamps (deterministic; for tests
    and reproducing specific incident timelines)."""

    service: str
    times: Tuple[float, ...]
    resource: Optional[str] = None

    name: str = field(default="scheduled-transient", init=False)

    def __post_init__(self) -> None:
        if self.service not in FAULT_SERVICES:
            raise ValueError(
                f"unknown fault service {self.service!r}; known: {FAULT_SERVICES}"
            )
        object.__setattr__(self, "times", tuple(float(t) for t in self.times))
        if any(t < 0 for t in self.times):
            raise ValueError("fault times cannot be negative")

    def events(self, horizon_seconds: float, rng: np.random.Generator) -> List[FaultEvent]:
        return [
            FaultEvent(time=t, kind="transient", service=self.service, resource=self.resource)
            for t in sorted(self.times)
            if t <= horizon_seconds
        ]

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "service": self.service,
            "times": list(self.times),
            "resource": self.resource,
        }


@dataclass(frozen=True)
class PreemptionWindows:
    """Scheduled FaaS capacity-loss windows (spot-style preemption).

    During each ``(start, end)`` window, new invocations of matching
    functions are rejected with
    :class:`~repro.cloud.FunctionPreemptedError` and invocations running
    into a window are killed at the window start (billed only up to the kill
    time; the killed environment never rejoins the warm pool).  Windows are
    part of the plan, not drawn from the seed, so an experiment can place
    them exactly where the scenario narrative needs them.
    """

    windows: Tuple[Tuple[float, float], ...]
    #: substring filter on the function name; ``None`` preempts every function.
    function: Optional[str] = None

    name: str = field(default="preemption-windows", init=False)

    def __post_init__(self) -> None:
        canonical = tuple((float(start), float(end)) for start, end in self.windows)
        for start, end in canonical:
            if end <= start or start < 0:
                raise ValueError(f"preemption window ({start}, {end}) is not a valid span")
        object.__setattr__(self, "windows", canonical)

    def events(self, horizon_seconds: float, rng: np.random.Generator) -> List[FaultEvent]:
        return [
            FaultEvent(
                time=start,
                kind="preemption",
                service="faas",
                resource=self.function,
                duration=end - start,
            )
            for start, end in sorted(self.windows)
            if start <= horizon_seconds
        ]

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "windows": [list(window) for window in self.windows],
            "function": self.function,
        }


@dataclass(frozen=True)
class ColdStartStorm:
    """Simulated deploys: every warm execution environment is flushed.

    At each deploy time the entire warm pool of every function is discarded,
    so the next invocation of every function pays a cold start -- the
    fleet-wide cold-start storm that follows a real rolling deploy.
    """

    deploy_times: Tuple[float, ...]

    name: str = field(default="cold-start-storm", init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "deploy_times", tuple(float(t) for t in self.deploy_times))
        if any(t < 0 for t in self.deploy_times):
            raise ValueError("deploy times cannot be negative")

    def events(self, horizon_seconds: float, rng: np.random.Generator) -> List[FaultEvent]:
        return [
            FaultEvent(time=t, kind="deploy", service="faas")
            for t in sorted(self.deploy_times)
            if t <= horizon_seconds
        ]

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "deploy_times": list(self.deploy_times)}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded tuple of fault processes -- one chaos configuration's identity."""

    processes: Tuple[object, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", tuple(self.processes))
        for process in self.processes:
            if not callable(getattr(process, "events", None)):
                raise TypeError(f"fault process {process!r} has no events() method")
        if self.seed < 0:
            raise ValueError("seed cannot be negative")

    def materialise(self, horizon_seconds: float) -> List[FaultEvent]:
        """The full fault schedule over ``horizon_seconds``, sorted by time.

        One generator seeded from the plan is threaded through the processes
        in declaration order, so the schedule is a pure function of
        ``(processes, seed, horizon)``.
        """
        if horizon_seconds < 0:
            raise ValueError("horizon_seconds cannot be negative")
        rng = np.random.default_rng(self.seed)
        events: List[FaultEvent] = []
        for process in self.processes:
            events.extend(process.events(horizon_seconds, rng))
        events.sort(key=lambda e: (e.time, e.kind, e.service or "", e.resource or ""))
        return events

    def describe(self) -> Dict[str, object]:
        """JSON-friendly identity for benchmark fingerprints."""
        return {
            "seed": self.seed,
            "processes": [process.describe() for process in self.processes],
        }

"""The single knob the serving layer exposes for chaos: a ``ChaosConfig``.

Bundles the fault plan with the resilience mechanisms that answer it: the
serving-level retry policy (re-dispatching failed queries on cold
replacements), the channel-level retry policy (re-issuing transient
publish/receive/put/get calls inside a dispatch), and the per-query
deadline that drives load shedding.  A ``ServingConfig`` with ``chaos=None``
(the default) replays the exact fault-free loop; the config is frozen,
picklable data so campaign cells can carry it to process-pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .faults import FaultPlan
from .injection import FaultInjector
from .retry import RetryPolicy

__all__ = ["ChaosConfig"]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos configuration: faults to inject plus how to survive them."""

    plan: FaultPlan
    #: serving-level policy: failed dispatch -> backoff -> cold re-dispatch.
    retry: Optional[RetryPolicy] = None
    #: channel-level policy for transient publish/receive/put/get faults.
    channel_retry: Optional[RetryPolicy] = None
    #: per-query deadline from arrival; overdue queries are shed, and
    #: retries that cannot finish in time are abandoned.  ``None`` disables.
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")

    def build_injector(self, horizon_seconds: float) -> FaultInjector:
        """Materialise the plan into a fresh injector for one serve."""
        return FaultInjector(self.plan, horizon_seconds)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly identity for benchmark fingerprints."""
        return {
            "plan": self.plan.describe(),
            "retry": self.retry.describe() if self.retry else None,
            "channel_retry": self.channel_retry.describe() if self.channel_retry else None,
            "deadline_seconds": self.deadline_seconds,
        }

"""The runtime half of the chaos layer: consuming a materialised fault plan.

A :class:`FaultInjector` is built once per serve from a
:class:`~repro.chaos.FaultPlan` and installed on a
:class:`~repro.cloud.CloudEnvironment`'s fault domain.  The cloud services
then consult it from their interception points:

* ``check(service, operation, resource, now)`` -- queues, topics, buckets
  and volumes call this after advancing the wire-latency clock; if a
  transient fault for that service is due it is consumed and a retryable
  :class:`~repro.cloud.TransientServiceError` is raised.
* ``on_faas_request(platform, function_name, request_time)`` -- the FaaS
  platform calls this at the top of every invocation request; it flushes
  warm pools for due deploy events, rejects requests landing inside a
  preemption window, and fires due transient FaaS faults.
* ``preemption_kill_time(function_name, started_at, end_time)`` -- asked
  when an invocation finishes; returns the start of the first preemption
  window the invocation ran into (the kill time), or ``None``.

The injector is deliberately *passive*: it never advances clocks or bills
anything itself, so with an empty plan every hook is a no-op and the serve
is identical to a chaos-off run.  Consumption order is driven entirely by
the (deterministic) order of service calls, which makes the injected fault
sequence reproducible across runs and executor kinds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cloud.errors import FunctionPreemptedError, TransientServiceError
from .faults import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Consumes a materialised :class:`FaultPlan` as the replay drives time."""

    def __init__(self, plan: FaultPlan, horizon_seconds: float):
        self.plan = plan
        self.horizon_seconds = float(horizon_seconds)
        events = plan.materialise(self.horizon_seconds)
        #: per-service transient events, each paired with a consumed flag.
        self._transient: Dict[str, List[List[object]]] = {}
        #: preemption windows as (start, end, resource-filter event).
        self._windows: List[Tuple[float, float, FaultEvent]] = []
        #: pending deploy (warm-pool flush) times, ascending.
        self._deploys: List[float] = []
        for event in events:
            if event.kind == "transient":
                self._transient.setdefault(event.service or "", []).append([event, False])
            elif event.kind == "preemption":
                self._windows.append((event.time, event.time + event.duration, event))
            elif event.kind == "deploy":
                self._deploys.append(event.time)
            else:
                raise ValueError(f"unknown fault kind {event.kind!r}")
        self._deploy_cursor = 0
        #: how many faults of each class actually fired, for the report.
        self.injected_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # generic transient faults

    def _take_transient(
        self, service: str, resource: Optional[str], now: float
    ) -> Optional[FaultEvent]:
        """Consume the earliest due, unconsumed transient fault, if any."""
        pending = self._transient.get(service)
        if not pending:
            return None
        for entry in pending:
            event, consumed = entry[0], entry[1]
            if consumed:
                continue
            if event.time > now:
                # Events are time-sorted; nothing later can be due either.
                break
            if event.matches_resource(resource):
                entry[1] = True
                return event
        return None

    def check(
        self,
        service: str,
        operation: str,
        resource: Optional[str],
        now: float,
    ) -> None:
        """Raise a :class:`TransientServiceError` if a fault is due for this call."""
        event = self._take_transient(service, resource, now)
        if event is not None:
            self._count(f"transient_{service}")
            raise TransientServiceError(service, operation=operation, resource=resource)

    # ------------------------------------------------------------------
    # FaaS-specific hooks

    def _window_covering(
        self, function_name: str, time: float
    ) -> Optional[Tuple[float, float]]:
        for start, end, event in self._windows:
            if start <= time < end and event.matches_resource(function_name):
                return start, end
        return None

    def on_faas_request(self, platform, function_name: str, request_time: float) -> None:
        """Entry hook for every FaaS invocation request.

        Flushes warm pools for deploys due by ``request_time``, then rejects
        the request if it lands inside a preemption window, then fires any
        due transient FaaS fault.
        """
        while self._deploy_cursor < len(self._deploys) and self._deploys[self._deploy_cursor] <= request_time:
            platform.flush_warm_pools()
            self._deploy_cursor += 1
            self._count("deploy_flush")
        window = self._window_covering(function_name, request_time)
        if window is not None:
            self._count("preemption_reject")
            raise FunctionPreemptedError(function_name, request_time)
        event = self._take_transient("faas", function_name, request_time)
        if event is not None:
            self._count("transient_faas")
            raise TransientServiceError("faas", operation="invoke", resource=function_name)

    def preemption_kill_time(
        self, function_name: str, started_at: float, end_time: float
    ) -> Optional[float]:
        """Kill time if an invocation over ``[started_at, end_time)`` is preempted."""
        kill: Optional[float] = None
        for start, end, event in self._windows:
            if not event.matches_resource(function_name):
                continue
            # A window starting within the run (or already covering its start)
            # kills the invocation at the window start (clamped to the start
            # of the run for invocations admitted exactly at a window edge).
            if start < end_time and end > started_at:
                candidate = max(start, started_at)
                if kill is None or candidate < kill:
                    kill = candidate
        if kill is not None:
            self._count("preemption_kill")
        return kill

    # ------------------------------------------------------------------

    def _count(self, fault_class: str) -> None:
        self.injected_counts[fault_class] = self.injected_counts.get(fault_class, 0) + 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected_counts.values())

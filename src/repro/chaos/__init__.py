"""Deterministic chaos layer: seeded fault injection and resilience policies.

The subsystem splits into declarative and runtime halves:

* :mod:`repro.chaos.faults` -- seeded fault *processes* (Poisson transient
  errors, scheduled preemption windows, cold-start storms) composed into a
  :class:`FaultPlan` whose materialised schedule is a pure function of
  ``(processes, seed, horizon)``;
* :mod:`repro.chaos.injection` -- the :class:`FaultInjector` that cloud
  services consult from their interception points;
* :mod:`repro.chaos.retry` -- the seeded, stateless :class:`RetryPolicy`;
* :mod:`repro.chaos.config` -- :class:`ChaosConfig`, the one value a
  :class:`~repro.serving.ServingConfig` carries to turn chaos on.

With ``chaos=None`` everywhere (the default), no injector is ever installed
and every interception point reduces to a single attribute check -- the
chaos-off serve is byte-identical to the pre-chaos loop.
"""

from .config import ChaosConfig
from .faults import (
    ColdStartStorm,
    FaultEvent,
    FaultPlan,
    PoissonFaultProcess,
    PreemptionWindows,
    ScheduledFaults,
)
from .injection import FaultInjector
from .retry import RetryPolicy

__all__ = [
    "ChaosConfig",
    "ColdStartStorm",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PoissonFaultProcess",
    "PreemptionWindows",
    "RetryPolicy",
    "ScheduledFaults",
]

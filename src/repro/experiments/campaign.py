"""Declarative experiment campaigns: scenario x backend x policy grids.

A :class:`Campaign` takes

* **scenarios** -- anything with a ``name`` and a ``build()`` returning a
  :class:`~repro.workloads.SporadicWorkload` (the scenario library's
  :class:`~repro.scenarios.Scenario` / :class:`~repro.scenarios.MixtureScenario`),
* **backend factories** -- zero-argument callables returning a fresh
  :class:`~repro.serving.ServingBackend`; each call must own a *private*
  :class:`~repro.cloud.CloudEnvironment` (cells never share a billing ledger
  or warm pool, so they are independent and safe to run concurrently), and
* **policy sets** -- zero-argument callables returning fresh
  :class:`~repro.serving.SchedulingPolicy` instances (policies are stateful
  across one serve, so every cell gets its own).

and replays the full grid through the serving layer -- each cell is one
:class:`~repro.serving.InferenceServer` serve on its own timeline.  Because
cells are independent, the runner parallelises them across a
:class:`concurrent.futures.ThreadPoolExecutor`; results land by grid index,
so the report is deterministic regardless of completion order.

The outcome is a :class:`CampaignReport`: per-cell
:meth:`~repro.serving.ServingReport.summary` dicts (the exact fingerprint
payload the serving benchmark records -- a policy-free Poisson/FSD cell
reproduces ``BENCH_serving.json`` fingerprints bit-for-bit), a stable
per-cell content hash, cross-cell pivots (cost per query, p95 latency,
cold-start fraction by scenario x backend), JSON export and a markdown table
renderer.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..chaos import ChaosConfig
from ..concurrency import ConcurrencyConfig
from ..serving import InferenceServer, SchedulingPolicy, ServingBackend, ServingConfig
from ..telemetry import TelemetryConfig
from ..telemetry.export import write_chrome_trace
from ..workloads import SporadicWorkload

__all__ = [
    "CampaignCell",
    "CellResult",
    "CampaignReport",
    "Campaign",
    "PIVOT_METRICS",
]

#: headline pivot metrics exported with every report.
PIVOT_METRICS = ("cost_per_query", "p95_latency_seconds", "cold_start_fraction")


@dataclass(frozen=True)
class CampaignCell:
    """One grid coordinate: a scenario replayed on a backend under policies."""

    scenario: str
    backend: str
    policy_set: str = "none"
    #: name of the chaos set this cell ran under; ``"none"`` (the default)
    #: keeps pre-chaos cell identities -- and their fingerprints -- unchanged.
    chaos: str = "none"
    #: name of the concurrency set this cell ran under; ``"none"`` (the
    #: default) keeps pre-concurrency cell identities unchanged, exactly
    #: like the chaos axis.
    concurrency: str = "none"

    @property
    def label(self) -> str:
        base = f"{self.scenario}/{self.backend}/{self.policy_set}"
        if self.chaos != "none":
            base = f"{base}/{self.chaos}"
        if self.concurrency != "none":
            base = f"{base}/{self.concurrency}"
        return base


@dataclass
class CellResult:
    """Outcome of replaying one cell through the serving layer."""

    cell: CampaignCell
    #: the cell's :meth:`~repro.serving.ServingReport.summary` -- the same
    #: simulated-fingerprint payload ``bench_serving.py`` records, untouched.
    summary: Dict[str, object]
    wall_seconds: float
    #: whether the campaign replayed this cell with outcome memoisation on.
    #: Cached replays time-translate recorded outcomes, which drifts floats
    #: at the ~1e-12 level, so the flag joins the fingerprint payload -- but
    #: only when ``True``, keeping every historical fingerprint byte-stable.
    #: The *columnar* fast path is bit-identical to the exact loop and is
    #: deliberately NOT part of the cell identity: a columnar replay of an
    #: uncached cell must reproduce the exact loop's fingerprint.
    outcome_cache: bool = False
    #: the recorded ``repro-trace-v1`` dict when the campaign ran with a
    #: telemetry axis (:class:`~repro.telemetry.TelemetryConfig`); ``None``
    #: otherwise.  Kept out of :attr:`fingerprint` and :meth:`to_dict` --
    #: traces are exported as standalone artifacts via
    #: :meth:`CampaignReport.export_traces`.
    trace: Optional[Dict[str, object]] = field(default=None, repr=False, compare=False)

    # -- derived metrics -------------------------------------------------------

    @property
    def num_queries(self) -> int:
        return int(self.summary["num_queries"])  # type: ignore[arg-type]

    @property
    def cost_per_query(self) -> Optional[float]:
        if self.num_queries == 0:
            return None
        return float(self.summary["cost_total"]) / self.num_queries  # type: ignore[arg-type]

    @property
    def p95_latency_seconds(self) -> Optional[float]:
        value = self.summary["p95_latency_seconds"]
        return None if value is None else float(value)  # type: ignore[arg-type]

    @property
    def cold_start_fraction(self) -> Optional[float]:
        cold = int(self.summary["cold_start_count"])  # type: ignore[arg-type]
        warm = int(self.summary["warm_start_count"])  # type: ignore[arg-type]
        total = cold + warm
        if total == 0:
            return None
        return cold / total

    def metric(self, name: str) -> object:
        """A derived metric by name, falling back to raw summary keys."""
        if name in ("cost_per_query", "p95_latency_seconds", "cold_start_fraction"):
            return getattr(self, name)
        if name in self.summary:
            return self.summary[name]
        raise KeyError(f"unknown campaign metric {name!r}")

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the cell identity + simulated summary.

        Depends only on simulated quantities (never wall-clock), so a fixed
        scenario seed reproduces it bit-for-bit across runs and machines.
        """
        payload = {
            "scenario": self.cell.scenario,
            "backend": self.cell.backend,
            "policy_set": self.cell.policy_set,
            "summary": self.summary,
        }
        # Chaos-free cells keep their historical hash input byte-for-byte.
        if self.cell.chaos != "none":
            payload["chaos"] = self.cell.chaos
        # Same rule for the concurrency axis: serialized cells (the default)
        # keep their historical hash input untouched.
        if self.cell.concurrency != "none":
            payload["concurrency"] = self.cell.concurrency
        # Same pattern for memoised replays: cache-off cells (the default)
        # keep their historical hash input untouched.
        if self.outcome_cache:
            payload["outcome_cache"] = True
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        exported: Dict[str, object] = {
            "scenario": self.cell.scenario,
            "backend": self.cell.backend,
            "policy_set": self.cell.policy_set,
            "fingerprint": self.fingerprint,
            "wall_seconds": self.wall_seconds,
            "summary": self.summary,
            "cost_per_query": self.cost_per_query,
            "cold_start_fraction": self.cold_start_fraction,
        }
        if self.cell.chaos != "none":
            exported["chaos"] = self.cell.chaos
        if self.cell.concurrency != "none":
            exported["concurrency"] = self.cell.concurrency
        if self.outcome_cache:
            exported["outcome_cache"] = True
        return exported


def _format_metric(value: object) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value:.6g}"
    return str(value)


@dataclass
class CampaignReport:
    """Every cell's outcome plus cross-cell pivot views."""

    cells: List[CellResult] = field(default_factory=list)

    # -- lookup ----------------------------------------------------------------

    @property
    def scenarios(self) -> List[str]:
        return self._ordered_unique(result.cell.scenario for result in self.cells)

    @property
    def backends(self) -> List[str]:
        return self._ordered_unique(result.cell.backend for result in self.cells)

    @property
    def policy_sets(self) -> List[str]:
        return self._ordered_unique(result.cell.policy_set for result in self.cells)

    @property
    def chaos_sets(self) -> List[str]:
        return self._ordered_unique(result.cell.chaos for result in self.cells)

    @property
    def concurrency_sets(self) -> List[str]:
        return self._ordered_unique(result.cell.concurrency for result in self.cells)

    @staticmethod
    def _ordered_unique(values) -> List[str]:
        seen: Dict[str, None] = {}
        for value in values:
            seen.setdefault(value)
        return list(seen)

    def cell(
        self,
        scenario: str,
        backend: str,
        policy_set: str = "none",
        chaos: str = "none",
        concurrency: str = "none",
    ) -> CellResult:
        """The result at one grid coordinate (``KeyError`` if absent)."""
        for result in self.cells:
            if result.cell == CampaignCell(scenario, backend, policy_set, chaos, concurrency):
                return result
        raise KeyError(
            f"no campaign cell {scenario}/{backend}/{policy_set}/{chaos}/{concurrency}"
        )

    # -- pivots ----------------------------------------------------------------

    def pivot(
        self, metric: str = "cost_per_query", policy_set: Optional[str] = None
    ) -> Dict[str, Dict[str, object]]:
        """``{scenario: {backend: value}}`` for one metric and policy set.

        ``policy_set`` defaults to the first configured set, so single-set
        campaigns need not name it.
        """
        if policy_set is None:
            sets = self.policy_sets
            if not sets:
                return {}
            policy_set = sets[0]
        table: Dict[str, Dict[str, object]] = {}
        for result in self.cells:
            if result.cell.policy_set != policy_set:
                continue
            table.setdefault(result.cell.scenario, {})[result.cell.backend] = result.metric(metric)
        return table

    def pivots(self, policy_set: Optional[str] = None) -> Dict[str, Dict[str, Dict[str, object]]]:
        """The headline pivots (:data:`PIVOT_METRICS`) for one policy set."""
        return {metric: self.pivot(metric, policy_set) for metric in PIVOT_METRICS}

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        exported: Dict[str, object] = {
            "scenarios": self.scenarios,
            "backends": self.backends,
            "policy_sets": self.policy_sets,
            "cells": [result.to_dict() for result in self.cells],
            "pivots": {policy_set: self.pivots(policy_set) for policy_set in self.policy_sets},
        }
        chaos_sets = self.chaos_sets
        if chaos_sets != ["none"]:
            exported["chaos_sets"] = chaos_sets
        concurrency_sets = self.concurrency_sets
        if concurrency_sets != ["none"]:
            exported["concurrency_sets"] = concurrency_sets
        return exported

    def to_json(self, path: Optional[Union[str, "os.PathLike[str]"]] = None, indent: int = 2) -> str:
        """Serialise the report; also writes it to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=False) + "\n"
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def export_traces(
        self, directory: Union[str, "os.PathLike[str]"]
    ) -> List[str]:
        """Write each traced cell's Chrome trace JSON into ``directory``.

        One ``<scenario>_<backend>_<policy_set>[_<chaos>].trace.json`` per
        cell that carries a recorded trace (campaigns run with a
        ``telemetry=`` axis); cells without traces are skipped.  Returns the
        written paths in cell order.
        """
        written: List[str] = []
        for result in self.cells:
            if result.trace is None:
                continue
            filename = result.cell.label.replace("/", "_") + ".trace.json"
            path = os.path.join(os.fspath(directory), filename)
            write_chrome_trace(result.trace, path)
            written.append(path)
        return written

    def render_markdown(
        self, metric: str = "cost_per_query", policy_set: Optional[str] = None
    ) -> str:
        """A GitHub-flavoured markdown pivot table (scenarios x backends)."""
        table = self.pivot(metric, policy_set)
        backends = self.backends
        header = f"| scenario | {' | '.join(backends)} |"
        separator = "|" + " --- |" * (len(backends) + 1)
        rows = []
        for scenario in self.scenarios:
            values = table.get(scenario, {})
            cells = " | ".join(_format_metric(values.get(backend)) for backend in backends)
            rows.append(f"| {scenario} | {cells} |")
        title = metric if policy_set is None else f"{metric} (policies: {policy_set})"
        return "\n".join([f"**{title}**", "", header, separator, *rows])


#: scenarios are duck-typed: a ``name`` attribute (or mapping key) plus a
#: ``build() -> SporadicWorkload`` method, checked at construction time.
ScenarioSpec = Union[Sequence[object], Mapping[str, object]]
BackendFactory = Callable[[], ServingBackend]
PolicyFactory = Callable[[], Sequence[SchedulingPolicy]]


class Campaign:
    """A declarative grid of (scenario x backend factory x policy set)."""

    def __init__(
        self,
        scenarios: ScenarioSpec,
        backends: Mapping[str, BackendFactory],
        policy_sets: Optional[Mapping[str, PolicyFactory]] = None,
        max_concurrent_queries: Optional[int] = None,
        chaos_sets: Optional[Mapping[str, Optional[ChaosConfig]]] = None,
        replay_mode: str = "exact",
        outcome_cache: bool = False,
        telemetry: Optional[TelemetryConfig] = None,
        concurrency_sets: Optional[Mapping[str, Optional[ConcurrencyConfig]]] = None,
    ):
        if isinstance(scenarios, Mapping):
            self.scenarios: Dict[str, object] = dict(scenarios)
        else:
            self.scenarios = {}
            for scenario in scenarios:
                name = getattr(scenario, "name", None)
                if not name:
                    raise ValueError(f"scenario {scenario!r} has no usable name")
                if name in self.scenarios:
                    raise ValueError(f"duplicate scenario name {name!r}")
                self.scenarios[name] = scenario
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        for name, scenario in self.scenarios.items():
            if not callable(getattr(scenario, "build", None)):
                raise TypeError(f"scenario {name!r} has no build() method")
        if not backends:
            raise ValueError("a campaign needs at least one backend factory")
        self.backends: Dict[str, BackendFactory] = dict(backends)
        self.policy_sets: Dict[str, PolicyFactory] = dict(
            policy_sets if policy_sets is not None else {"none": tuple}
        )
        if not self.policy_sets:
            raise ValueError("a campaign needs at least one policy set")
        self.max_concurrent_queries = max_concurrent_queries
        self.chaos_sets: Dict[str, Optional[ChaosConfig]] = dict(
            chaos_sets if chaos_sets is not None else {"none": None}
        )
        if not self.chaos_sets:
            raise ValueError("a campaign needs at least one chaos set")
        # Concurrency axis, mirroring the chaos axis: named
        # ConcurrencyConfigs crossed with every other coordinate.  The two
        # axes are mutually exclusive grid-wide because their cross cells
        # could never serve (ServingConfig rejects chaos + concurrency).
        self.concurrency_sets: Dict[str, Optional[ConcurrencyConfig]] = dict(
            concurrency_sets if concurrency_sets is not None else {"none": None}
        )
        if not self.concurrency_sets:
            raise ValueError("a campaign needs at least one concurrency set")
        if any(config is not None for config in self.chaos_sets.values()) and any(
            config is not None for config in self.concurrency_sets.values()
        ):
            raise ValueError(
                "chaos_sets and concurrency_sets cannot both carry non-None "
                "configs: their cross cells would be unservable (ServingConfig "
                "rejects chaos together with concurrency)"
            )
        # Replay-speed knobs, threaded into every cell's ServingConfig.
        # ``replay_mode`` picks the event core ("exact", "auto"/"columnar"
        # fast path, or the "fluid" analytic approximation); ``outcome_cache``
        # memoises whole executions across a cell's repeated (model, batch)
        # fingerprints.  Both default off so historical campaign fingerprints
        # replay unchanged; chaos cells always fall back to the exact loop.
        self.replay_mode = str(replay_mode)
        if self.replay_mode not in ("exact", "auto", "columnar", "fluid"):
            raise ValueError(
                "replay_mode must be one of 'exact', 'auto', 'columnar', 'fluid'; "
                f"got {self.replay_mode!r}"
            )
        self.outcome_cache = bool(outcome_cache)
        # Opt-in telemetry axis: every cell serves with this TelemetryConfig
        # and carries its recorded trace on the CellResult.  ``None`` (the
        # default) keeps cells untraced and their fingerprints byte-stable.
        self.telemetry = telemetry

    def cells(self) -> List[CampaignCell]:
        """The grid in deterministic scenario-major order."""
        return [
            CampaignCell(
                scenario=scenario,
                backend=backend,
                policy_set=policy_set,
                chaos=chaos,
                concurrency=concurrency,
            )
            for scenario in self.scenarios
            for backend in self.backends
            for policy_set in self.policy_sets
            for chaos in self.chaos_sets
            for concurrency in self.concurrency_sets
        ]

    def _validate_cells(self, cells: Sequence[CampaignCell]) -> List[CampaignCell]:
        for cell in cells:
            if cell.scenario not in self.scenarios:
                raise KeyError(f"cell names unknown scenario {cell.scenario!r}")
            if cell.backend not in self.backends:
                raise KeyError(f"cell names unknown backend {cell.backend!r}")
            if cell.policy_set not in self.policy_sets:
                raise KeyError(f"cell names unknown policy set {cell.policy_set!r}")
            if cell.chaos not in self.chaos_sets:
                raise KeyError(f"cell names unknown chaos set {cell.chaos!r}")
            if cell.concurrency not in self.concurrency_sets:
                raise KeyError(f"cell names unknown concurrency set {cell.concurrency!r}")
        return list(cells)

    def run_cell(self, cell: CampaignCell) -> CellResult:
        """Replay one cell: fresh workload, fresh backend, fresh policies."""
        scenario = self.scenarios[cell.scenario]
        workload: SporadicWorkload = scenario.build()  # type: ignore[attr-defined]
        backend = self.backends[cell.backend]()
        policies = tuple(self.policy_sets[cell.policy_set]())
        # Precedence: an explicit chaos-set entry wins; otherwise a scenario
        # may carry its own ChaosConfig (the ChaosScenario wrapper).
        chaos = self.chaos_sets[cell.chaos]
        if chaos is None:
            chaos = getattr(scenario, "chaos", None)
        concurrency = self.concurrency_sets[cell.concurrency]
        server = InferenceServer(
            backend,
            ServingConfig(
                max_concurrent_queries=self.max_concurrent_queries,
                policies=policies,
                chaos=chaos,
                replay_mode=self.replay_mode,
                outcome_cache=self.outcome_cache,
                telemetry=self.telemetry,
                concurrency=concurrency,
            ),
        )
        start = time.perf_counter()
        report = server.serve(workload)
        wall_seconds = time.perf_counter() - start
        return CellResult(
            cell=cell,
            summary=report.summary(),
            wall_seconds=wall_seconds,
            outcome_cache=self.outcome_cache,
            trace=None if report.telemetry is None else report.telemetry.to_dict(),
        )

    def run(
        self,
        max_workers: Optional[int] = None,
        executor: str = "thread",
        cells: Optional[Sequence[CampaignCell]] = None,
    ) -> CampaignReport:
        """Replay the grid; cells run concurrently when possible.

        Each cell owns a private cloud environment (the backend-factory
        contract), so cells are embarrassingly parallel: they are dispatched
        to an executor pool and collected by grid index, making the report
        deterministic regardless of scheduling.  ``max_workers=1`` forces a
        serial replay (useful for profiling); the default sizes the pool to
        the grid and the machine.

        ``executor`` picks the pool kind: ``"thread"`` (default; cells spend
        much of their time in numpy/scipy, which release the GIL) or
        ``"process"`` for true multi-core replay.  The process pool pickles
        the cell dispatch, so every scenario, backend factory and policy-set
        factory must be picklable -- use named top-level factories (e.g. the
        :mod:`repro.serving.factories` specs) rather than lambdas or
        closures.  Reports are identical across executors.

        ``cells`` restricts the replay to an explicit cell list (each cell
        must name configured scenario/backend/policy-set entries) -- the
        deployment planner uses this to evaluate one (backend, policy) pair
        per candidate instead of the full cross product.
        """
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}; use 'thread' or 'process'")
        cells = self.cells() if cells is None else self._validate_cells(cells)
        if max_workers is None:
            max_workers = min(len(cells), os.cpu_count() or 1)
        if max_workers <= 1 or len(cells) == 1:
            return CampaignReport(cells=[self.run_cell(cell) for cell in cells])
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=max_workers) as pool:
            results = list(pool.map(self.run_cell, cells))
        return CampaignReport(cells=results)

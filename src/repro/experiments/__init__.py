"""Experiment campaigns: replay scenario grids through the serving layer.

:class:`Campaign` sweeps (scenario x backend factory x policy set) grids --
each cell a full :class:`~repro.serving.InferenceServer` replay on a private
cloud timeline, parallelised across cells -- and produces a
:class:`CampaignReport` with per-cell fingerprints, cross-cell pivots, JSON
export and markdown rendering.
"""

from .campaign import (
    PIVOT_METRICS,
    Campaign,
    CampaignCell,
    CampaignReport,
    CellResult,
)

__all__ = [
    "PIVOT_METRICS",
    "Campaign",
    "CampaignCell",
    "CampaignReport",
    "CellResult",
]

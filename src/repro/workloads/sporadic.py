"""Sporadic inference workload model (Section VI-C).

The paper motivates FSD-Inference with *sporadic* workloads: queries arrive
at irregular and unpredictable intervals over a day, mixing different model
sizes, so neither always-on servers (paying for idle capacity) nor job-scoped
servers (paying start-up latency per query) are good fits.

This module generates such workloads deterministically: a 24-hour horizon, a
target daily sample volume, queries of a fixed batch size spread evenly over
the configured neuron counts, and arrival times drawn from a Poisson process
(seeded, so experiments are reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .graph_challenge import PAPER_BATCH_SIZE, PAPER_NEURON_COUNTS

__all__ = [
    "InferenceQuery",
    "SporadicWorkload",
    "generate_sporadic_workload",
    "merge_queries",
]

_SECONDS_PER_DAY = 24 * 3600.0


@dataclass(frozen=True)
class InferenceQuery:
    """One inference request within a sporadic workload.

    ``merged_from`` carries coalescing provenance: when the serving layer's
    batching policy folds several same-model queries into one larger request,
    the synthetic merged query records the original query ids (in arrival
    order).  Ordinary trace queries leave it empty.
    """

    query_id: int
    arrival_time: float
    neurons: int
    samples: int
    merged_from: Tuple[int, ...] = ()

    @property
    def is_merged(self) -> bool:
        return len(self.merged_from) > 1


def merge_queries(queries: Sequence[InferenceQuery]) -> InferenceQuery:
    """Fold same-model queries into one merged request with provenance.

    The merged query inherits the earliest arrival's id and arrival time (the
    batch leader -- the query that opened the coalescing window), sums the
    sample counts, and lists every constituent query id in ``merged_from``.
    """
    if not queries:
        raise ValueError("cannot merge an empty query group")
    neuron_counts = {query.neurons for query in queries}
    if len(neuron_counts) != 1:
        raise ValueError(f"cannot merge queries of mixed model sizes {sorted(neuron_counts)}")
    ordered = sorted(queries, key=lambda q: (q.arrival_time, q.query_id))
    leader = ordered[0]
    return InferenceQuery(
        query_id=leader.query_id,
        arrival_time=leader.arrival_time,
        neurons=leader.neurons,
        samples=sum(query.samples for query in ordered),
        merged_from=tuple(query.query_id for query in ordered),
    )


@dataclass
class SporadicWorkload:
    """A day's worth of sporadic inference queries."""

    queries: List[InferenceQuery]
    horizon_seconds: float = _SECONDS_PER_DAY

    @property
    def total_samples(self) -> int:
        return sum(q.samples for q in self.queries)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def queries_by_neurons(self) -> Dict[int, List[InferenceQuery]]:
        grouped: Dict[int, List[InferenceQuery]] = {}
        for query in self.queries:
            grouped.setdefault(query.neurons, []).append(query)
        return grouped

    def samples_by_neurons(self) -> Dict[int, int]:
        return {n: sum(q.samples for q in qs) for n, qs in self.queries_by_neurons().items()}

    def max_concurrent_queries(self, query_duration_seconds: float) -> int:
        """Upper bound on overlapping queries if each runs for the given duration."""
        events: List[Tuple[float, int]] = []
        for query in self.queries:
            events.append((query.arrival_time, 1))
            events.append((query.arrival_time + query_duration_seconds, -1))
        events.sort()
        concurrent = peak = 0
        for _, delta in events:
            concurrent += delta
            peak = max(peak, concurrent)
        return peak

    # -- trace replay hooks ----------------------------------------------------

    def iter_trace(self) -> Iterator[InferenceQuery]:
        """Yield the queries in arrival order (the serving layer's replay order)."""
        return iter(sorted(self.queries, key=lambda q: (q.arrival_time, q.query_id)))

    def interarrival_seconds(self) -> np.ndarray:
        """Gaps between consecutive arrivals (what drives cold/warm behaviour)."""
        times = np.sort(np.asarray([q.arrival_time for q in self.queries], dtype=np.float64))
        if times.size == 0:
            return times
        return np.diff(times, prepend=0.0)

    def head(self, num_queries: int) -> "SporadicWorkload":
        """The first ``num_queries`` arrivals as a workload (smoke-sized replays)."""
        if num_queries < 1:
            raise ValueError("head needs at least one query")
        selected = list(self.iter_trace())[:num_queries]
        return SporadicWorkload(queries=selected, horizon_seconds=self.horizon_seconds)


def generate_sporadic_workload(
    daily_samples: int,
    batch_size: int = PAPER_BATCH_SIZE,
    neuron_counts: Sequence[int] = PAPER_NEURON_COUNTS,
    seed: int = 13,
    horizon_seconds: float = _SECONDS_PER_DAY,
) -> SporadicWorkload:
    """Build a sporadic workload with ``daily_samples`` spread evenly over models.

    Queries are ``batch_size`` samples each (the last query of each model size
    absorbs the remainder), matching the paper's Figure 4 setup where the
    daily query volume is "evenly spread between N = 1024, 4096, 16384 and
    65536".  "Evenly" holds for the cross-model split too: when
    ``daily_samples`` does not divide by the number of model sizes, the extra
    samples are spread one per model size (never dumped on a single size), so
    no two sizes differ by more than one sample.
    """
    if daily_samples < 1:
        raise ValueError("daily_samples must be positive")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if not neuron_counts:
        raise ValueError("at least one neuron count is required")

    rng = np.random.default_rng(seed)
    per_model = daily_samples // len(neuron_counts)
    remainder = daily_samples - per_model * len(neuron_counts)

    queries: List[InferenceQuery] = []
    query_id = 0
    for index, neurons in enumerate(neuron_counts):
        samples_for_model = per_model + (1 if index < remainder else 0)
        if samples_for_model == 0:
            continue
        full_queries, tail = divmod(samples_for_model, batch_size)
        if full_queries == 0:
            sizes = [tail]
        else:
            # The last query absorbs the sub-batch remainder instead of
            # spawning an extra undersized query.
            sizes = [batch_size] * full_queries
            sizes[-1] += tail
        arrival_times = np.sort(rng.uniform(0.0, horizon_seconds, size=len(sizes)))
        for size, arrival in zip(sizes, arrival_times):
            queries.append(
                InferenceQuery(
                    query_id=query_id,
                    arrival_time=float(arrival),
                    neurons=int(neurons),
                    samples=int(size),
                )
            )
            query_id += 1

    queries.sort(key=lambda q: q.arrival_time)
    queries = [
        InferenceQuery(query_id=i, arrival_time=q.arrival_time, neurons=q.neurons, samples=q.samples)
        for i, q in enumerate(queries)
    ]
    return SporadicWorkload(queries=queries, horizon_seconds=horizon_seconds)

"""Synthetic Graph Challenge style sparse DNN workloads.

The paper evaluates on the MIT/IEEE/Amazon Sparse Deep Neural Network Graph
Challenge benchmark: synthetic (RadiX-Net) sparse DNNs with 120 layers and
per-layer neuron counts N in {1024, 4096, 16384, 65536}, each neuron having a
fixed number of incoming connections (32), with a per-N negative bias and an
activation cap of 32.  The official benchmark files are multi-GB downloads
that are unavailable offline, so this module generates structurally
equivalent synthetic networks:

* exactly ``nnz_per_row`` nonzeros in every weight-matrix row, placed by a
  deterministic, layer-dependent mixing permutation (so consecutive layers
  connect different neuron groups, as RadiX-Net's radix topology does);
* positive weight values scaled so that activations neither die out nor
  saturate immediately, keeping realistic data-dependent sparsity;
* the paper's bias values per neuron count (-0.30, -0.35, -0.40, -0.45) and
  the activation cap of 32.

Ground truth is always the single-process forward pass over the generated
model, so correctness checks are exact regardless of the synthetic weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from ..model import SparseDNN

__all__ = [
    "GraphChallengeConfig",
    "PAPER_BIASES",
    "PAPER_NEURON_COUNTS",
    "PAPER_LAYER_COUNT",
    "PAPER_BATCH_SIZE",
    "PAPER_WORKER_COUNTS",
    "PAPER_WORKER_MEMORY_MB",
    "build_graph_challenge_model",
    "generate_input_batch",
]

#: Per-layer neuron counts evaluated in the paper (Section VI-A).
PAPER_NEURON_COUNTS = (1024, 4096, 16384, 65536)
#: Number of layers used for every experiment in the paper.
PAPER_LAYER_COUNT = 120
#: Inference batch size used for every experiment in the paper.
PAPER_BATCH_SIZE = 10_000
#: Worker parallelism levels evaluated in the paper.
PAPER_WORKER_COUNTS = (8, 20, 42, 62)
#: Negative biases applied per neuron count (Section VI-A1).
PAPER_BIASES: Dict[int, float] = {
    1024: -0.30,
    4096: -0.35,
    16384: -0.40,
    65536: -0.45,
}
#: Lambda memory allocated per worker for each neuron count (Section VI-A1).
PAPER_WORKER_MEMORY_MB: Dict[int, int] = {
    1024: 1000,
    4096: 1500,
    16384: 2000,
    65536: 4000,
}


@dataclass(frozen=True)
class GraphChallengeConfig:
    """Parameters of one synthetic Graph Challenge network.

    The defaults build a scaled-down network suitable for tests; pass
    ``neurons``/``layers`` matching :data:`PAPER_NEURON_COUNTS` /
    :data:`PAPER_LAYER_COUNT` for paper-scale runs.

    ``num_communities`` and ``community_link_fraction`` control the planted
    locality structure: RadiX-Net topologies wire each neuron mostly to a
    small set of neuron groups, which is exactly the structure hypergraph
    partitioning exploits (Table III).  The community membership is hidden
    behind a random permutation of neuron indices, so index-contiguous or
    random partitions cannot benefit from it by accident.
    """

    neurons: int = 1024
    layers: int = 12
    nnz_per_row: int = 32
    seed: int = 7
    activation_cap: float = 32.0
    bias: Optional[float] = None
    name: Optional[str] = None
    num_communities: int = 32
    community_link_fraction: float = 0.9
    links_per_community: int = 2

    def __post_init__(self) -> None:
        if self.neurons < 2:
            raise ValueError("a network needs at least 2 neurons")
        if self.layers < 1:
            raise ValueError("a network needs at least 1 layer")
        if not 1 <= self.nnz_per_row <= self.neurons:
            raise ValueError("nnz_per_row must be between 1 and the neuron count")
        if not 1 <= self.num_communities <= self.neurons:
            raise ValueError("num_communities must be between 1 and the neuron count")
        if not 0.0 <= self.community_link_fraction <= 1.0:
            raise ValueError("community_link_fraction must be in [0, 1]")
        if self.links_per_community < 1:
            raise ValueError("links_per_community must be at least 1")

    @property
    def effective_bias(self) -> float:
        if self.bias is not None:
            return self.bias
        # Interpolate the paper's biases for non-paper neuron counts.
        return PAPER_BIASES.get(self.neurons, -0.30)

    @property
    def effective_name(self) -> str:
        if self.name:
            return self.name
        return f"gc-n{self.neurons}-l{self.layers}-k{self.nnz_per_row}-s{self.seed}"


def _community_members(config: GraphChallengeConfig, hidden_permutation: np.ndarray) -> list:
    """Neuron indices of each hidden community."""
    n = config.neurons
    communities = min(config.num_communities, n)
    boundaries = np.linspace(0, n, communities + 1, dtype=np.int64)
    return [
        hidden_permutation[boundaries[c]:boundaries[c + 1]]
        for c in range(communities)
    ]


def _layer_weight(
    config: GraphChallengeConfig,
    layer: int,
    rng: np.random.Generator,
    members: list,
) -> sparse.csr_matrix:
    """Build one layer's weight matrix with ``nnz_per_row`` nonzeros per row.

    Each hidden community draws most of its incoming connections from a small,
    layer-dependent set of source communities (RadiX-Net style locality); the
    remainder is uniform over all neurons.  The pattern is deterministic in
    ``(seed, layer)``.
    """
    n = config.neurons
    k = config.nnz_per_row
    num_communities = len(members)

    rows_parts = []
    cols_parts = []
    for community, community_rows in enumerate(members):
        if community_rows.size == 0:
            continue
        # Source communities for this target community: itself plus a small,
        # fixed ring neighbourhood.  Keeping the linkage layer-independent
        # mirrors the stable block structure of RadiX-Net topologies, which is
        # what allows a good partition to keep most communication local.
        linked = sorted({(community + off) % num_communities for off in range(config.links_per_community)})
        pool = np.concatenate([members[c] for c in linked])

        count = community_rows.size * k
        in_community = rng.random(count) < config.community_link_fraction
        cols = np.where(
            in_community,
            pool[rng.integers(0, pool.size, size=count)],
            rng.integers(0, n, size=count),
        )
        rows = np.repeat(community_rows.astype(np.int64), k)
        rows_parts.append(rows)
        cols_parts.append(cols.astype(np.int64))

    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    # Weight values: zero-centred with a variance scaled to the in-degree
    # (Xavier-style), i.e. mostly excitatory with a substantial inhibitory
    # fraction.  Under ReLU this keeps activation magnitudes bounded without
    # saturating at the cap, and together with the negative bias it produces a
    # stable interior activation density -- the data-dependent sparsity the
    # distributed MVP/MMP code paths are designed to exploit.
    sigma = 1.8 / np.sqrt(k * 0.5)
    values = rng.normal(loc=0.1 * sigma, scale=sigma, size=rows.shape[0]).astype(np.float64)
    matrix = sparse.coo_matrix((values, (rows, cols)), shape=(n, n))
    matrix.sum_duplicates()
    return matrix.tocsr()


def build_graph_challenge_model(config: GraphChallengeConfig) -> SparseDNN:
    """Generate a synthetic Graph Challenge style :class:`SparseDNN`."""
    rng = np.random.default_rng(config.seed)
    hidden_permutation = rng.permutation(config.neurons)
    members = _community_members(config, hidden_permutation)
    weights = [
        _layer_weight(config, layer, rng, members) for layer in range(config.layers)
    ]
    biases = [config.effective_bias] * config.layers
    return SparseDNN(
        weights=weights,
        biases=biases,
        activation_cap=config.activation_cap,
        name=config.effective_name,
    )


def generate_input_batch(
    neurons: int,
    samples: int,
    density: float = 0.25,
    seed: int = 11,
) -> sparse.csr_matrix:
    """Generate a sparse binary input batch of shape ``(neurons, samples)``.

    The Graph Challenge inputs are MNIST images scaled to the layer width,
    thresholded to {0, 1} and flattened into columns; a Bernoulli sparse
    binary matrix with comparable density exercises the same sparse code
    paths and produces the same kind of data-dependent activation sparsity.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    matrix = sparse.random(
        neurons,
        samples,
        density=density,
        format="csr",
        dtype=np.float64,
        random_state=rng,
        data_rvs=lambda size: np.ones(size, dtype=np.float64),
    )
    return matrix


def paper_configuration(neurons: int, layers: int = PAPER_LAYER_COUNT, seed: int = 7) -> GraphChallengeConfig:
    """The paper's configuration for one of its four benchmark networks."""
    if neurons not in PAPER_NEURON_COUNTS:
        raise ValueError(
            f"the paper evaluates neuron counts {PAPER_NEURON_COUNTS}, got {neurons}"
        )
    return GraphChallengeConfig(
        neurons=neurons,
        layers=layers,
        nnz_per_row=32,
        seed=seed,
        bias=PAPER_BIASES[neurons],
    )

"""Workload generators: Graph Challenge networks, input batches, sporadic queries."""

from .graph_challenge import (
    GraphChallengeConfig,
    PAPER_BATCH_SIZE,
    PAPER_BIASES,
    PAPER_LAYER_COUNT,
    PAPER_NEURON_COUNTS,
    PAPER_WORKER_COUNTS,
    PAPER_WORKER_MEMORY_MB,
    build_graph_challenge_model,
    generate_input_batch,
    paper_configuration,
)
from .sporadic import (
    InferenceQuery,
    SporadicWorkload,
    generate_sporadic_workload,
    merge_queries,
)

__all__ = [
    "GraphChallengeConfig",
    "PAPER_BATCH_SIZE",
    "PAPER_BIASES",
    "PAPER_LAYER_COUNT",
    "PAPER_NEURON_COUNTS",
    "PAPER_WORKER_COUNTS",
    "PAPER_WORKER_MEMORY_MB",
    "build_graph_challenge_model",
    "generate_input_batch",
    "paper_configuration",
    "InferenceQuery",
    "SporadicWorkload",
    "generate_sporadic_workload",
    "merge_queries",
]

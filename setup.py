"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` can fall back to the legacy editable-install path on
offline machines where PEP 660 wheel building is unavailable.
"""

from setuptools import setup

setup()

"""Package metadata for the FSD reproduction.

There is no ``pyproject.toml`` in this repo; this file is the single source
of packaging truth so ``pip install -e .`` works on offline machines where
PEP 660 wheel building is unavailable.  The package list is explicit (no
``find_packages``) so that forgetting to register a new subpackage -- as
happened when ``repro.analysis`` was added -- is a visible one-line diff
rather than a silent wheel omission.
"""

from setuptools import setup

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.chaos",
    "repro.cloud",
    "repro.comm",
    "repro.concurrency",
    "repro.core",
    "repro.costmodel",
    "repro.experiments",
    "repro.model",
    "repro.partitioning",
    "repro.planner",
    "repro.scenarios",
    "repro.serving",
    "repro.sparse",
    "repro.telemetry",
    "repro.workloads",
]

setup(
    name="fsd-repro",
    version="0.10.0",
    description=(
        "Reproduction of cloud-based distributed matrix multiplication "
        "serving (FSD) with deterministic simulation, chaos injection, "
        "SLO planning, virtual-timeline tracing, concurrent-execution "
        "contention modelling, and the detlint determinism linter"
    ),
    package_dir={"": "src"},
    packages=PACKAGES,
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "scipy"],
    },
    entry_points={
        "console_scripts": [
            "detlint = repro.analysis.cli:main",
            "repro-trace = repro.telemetry.cli:main",
        ],
    },
)

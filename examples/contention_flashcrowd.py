"""Flash-crowd contention study: serialized vs interleaved execution.

The serialized serving loop replays one query at a time on the shared
timeline: every query observes its *solo* latency, no matter how many are
in flight together.  The concurrency engine interleaves in-flight queries'
sub-event streams and runs them through a deterministic fair-share arbiter:
an op overlapping ``k`` peers on a capacity-``c`` resource takes ``k/c``
times its solo latency (processor sharing), recomputed at every
entry/exit boundary.

This walkthrough hits the same flash crowd -- a burst of near-simultaneous
queries -- three ways:

1. **serialized** (the default): the baseline tail latency,
2. **interleaved, unbounded**: ``ConcurrencyConfig()`` with every capacity
   infinite -- byte-identical to the serialized loop (the gating contract
   the subsystem is built on), and
3. **interleaved, contended**: a platform FaaS concurrent-invocation quota
   far below the crowd's demand -- the tail inflates deterministically and
   the summary gains a ``"concurrency"`` block with per-resource peaks.

Run with::

    PYTHONPATH=src python examples/contention_flashcrowd.py
"""

from __future__ import annotations

from repro import (
    CloudEnvironment,
    ConcurrencyConfig,
    ContentionConfig,
    EngineConfig,
    FSDServingBackend,
    GraphChallengeConfig,
    InferenceQuery,
    InferenceServer,
    QueryWorkloadFactory,
    ServingConfig,
    SporadicWorkload,
    Variant,
    build_graph_challenge_model,
)

NEURONS = 64
LAYERS = 3
BATCH = 4
CROWD = 10  # queries in the flash crowd
SPACING_SECONDS = 0.05  # far below a query's service time: all in flight together

#: the contended run's capacities: the whole crowd's worker trees share a
#: platform quota of 4 concurrent FaaS invocations.
CONTENTION = ContentionConfig(faas_invocations=4.0)


def build_backend():
    model = build_graph_challenge_model(
        GraphChallengeConfig(
            neurons=NEURONS, layers=LAYERS, nnz_per_row=8, num_communities=8, seed=7
        )
    )
    return FSDServingBackend(
        CloudEnvironment(),
        QueryWorkloadFactory(model_builder=lambda n: model),
        config_for=lambda n: EngineConfig(variant=Variant.QUEUE, workers=2),
    )


def flash_crowd() -> SporadicWorkload:
    return SporadicWorkload(
        queries=[
            InferenceQuery(
                query_id=i,
                arrival_time=SPACING_SECONDS * i,
                neurons=NEURONS,
                samples=BATCH,
            )
            for i in range(CROWD)
        ]
    )


def main() -> None:
    workload = flash_crowd()

    serialized = InferenceServer(build_backend()).serve(workload)
    unbounded = InferenceServer(
        build_backend(), ServingConfig(concurrency=ConcurrencyConfig())
    ).serve(workload)
    contended = InferenceServer(
        build_backend(),
        ServingConfig(concurrency=ConcurrencyConfig(contention=CONTENTION)),
    ).serve(workload)

    # The gating contract, demonstrated live: an unbounded interleaved serve
    # is bit-for-bit the serialized loop.
    assert unbounded.records == serialized.records
    assert unbounded.summary() == serialized.summary()
    assert "concurrency" not in unbounded.summary()

    print(f"flash crowd: {CROWD} queries arriving {SPACING_SECONDS:.2f}s apart\n")
    print("| serve | p50 latency | p99 latency | makespan | cost |")
    print("|" + " --- |" * 5)
    for name, report in (
        ("serialized", serialized),
        ("interleaved (unbounded)", unbounded),
        ("interleaved (faas quota 4)", contended),
    ):
        summary = report.summary()
        print(
            f"| {name} | {summary['p50_latency_seconds']:.3f}s "
            f"| {summary['p99_latency_seconds']:.3f}s "
            f"| {summary['makespan_seconds']:.3f}s "
            f"| ${summary['cost_total']:.6f} |"
        )

    block = contended.summary()["concurrency"]
    assert contended.summary()["p99_latency_seconds"] > serialized.summary()["p99_latency_seconds"]
    # Contention stretches the serving timeline, never the substrate's bill.
    assert contended.cost.total == serialized.cost.total

    faas = block["resources"]["faas"]
    print()
    print(
        f"contended run: {block['interfered_query_count']} of {CROWD} queries "
        f"interfered, {block['interference_total_seconds']:.1f}s total interference "
        f"(max {block['interference_max_seconds']:.1f}s on one query)"
    )
    print(
        f"faas quota: peak demand {faas['peak_weight']:.0f} concurrent invocations "
        f"against capacity {faas['capacity']:.0f} "
        f"(peak utilization {faas['peak_utilization']:.1f}x, "
        f"peak backlog {faas['peak_backlog']:.0f})"
    )
    print()
    print(
        "the unbounded interleave reproduced the serialized loop bit-for-bit; "
        "only finite capacities can stretch a timeline, and the same seed "
        "stretches it identically on every replay."
    )


if __name__ == "__main__":
    main()

"""Chaos failover study: serverless FSD vs an always-on server under a storm.

The chaos layer injects a deterministic fault storm -- a four-hour FaaS
preemption window (think spot reclamation or a noisy-neighbour eviction
wave), Poisson transient queue faults and a mid-day redeploy that flushes
every warm pool -- and the serving loop degrades *gracefully*: queries retry
with seeded jittered backoff, blow their deadline and get shed, or fail with
a structured reason, but the loop never crashes.

The failover story is architectural: the storm targets the serverless
substrate (FaaS invocations, queue traffic), so the FSD backend rides
through it on retries and loses some availability, while the always-on
server backend never touches FaaS or queues -- it sails through the same
storm untouched, but pays for its VM around the clock.  Neither backend
dominates: the storm prices serverless availability against always-on
idle cost.

Run with::

    PYTHONPATH=src python examples/chaos_failover.py
"""

from __future__ import annotations

from repro import (
    Campaign,
    ChaosConfig,
    CloudEnvironment,
    ColdStartStorm,
    EngineConfig,
    FaultPlan,
    FSDServingBackend,
    GraphChallengeConfig,
    PoissonFaultProcess,
    PoissonProcess,
    PreemptionWindows,
    QueryWorkloadFactory,
    RetryPolicy,
    Scenario,
    ServerMode,
    ServerServingBackend,
    Variant,
    build_graph_challenge_model,
)

NEURONS = (64,)
LAYERS = 3
BATCH = 4
DAILY_SAMPLES = 40 * BATCH  # ~40 queries over the day

#: the storm: preemptions 10:00-14:00, transient queue faults all day,
#: one warm-pool-flushing redeploy at 16:00.
STORM = ChaosConfig(
    plan=FaultPlan(
        processes=(
            PreemptionWindows(windows=((10 * 3600.0, 14 * 3600.0),)),
            PoissonFaultProcess("queue", rate_per_hour=1.5),
            ColdStartStorm(deploy_times=(16 * 3600.0,)),
        ),
        seed=23,
    ),
    retry=RetryPolicy(max_attempts=3, initial_backoff_seconds=5.0, seed=7),
    channel_retry=RetryPolicy(max_attempts=5, initial_backoff_seconds=0.05, seed=8),
    deadline_seconds=2 * 3600.0,
)


def main() -> None:
    model = build_graph_challenge_model(
        GraphChallengeConfig(neurons=64, layers=LAYERS, nnz_per_row=8, num_communities=8, seed=7)
    )

    def factory():
        return QueryWorkloadFactory(model_builder=lambda n: model)

    backends = {
        # QUEUE variant so the storm's transient queue faults actually land
        # on channel traffic (the serial variant has none).
        # detlint: allow[DET006] thread-executor example; process campaigns use the Spec factories
        "fsd-serverless": lambda: FSDServingBackend(
            CloudEnvironment(),
            factory(),
            config_for=lambda n: EngineConfig(variant=Variant.QUEUE, workers=2),
        ),
        # detlint: allow[DET006] thread-executor example; process campaigns use the Spec factories
        "server-always-on": lambda: ServerServingBackend(
            CloudEnvironment(), ServerMode.ALWAYS_ON_HOT, factory()
        ),
    }
    scenario = Scenario(
        "poisson-day",
        PoissonProcess(),
        daily_samples=DAILY_SAMPLES,
        batch_size=BATCH,
        neuron_counts=NEURONS,
        seed=31,
    )

    report = Campaign([scenario], backends, chaos_sets={"storm": STORM}).run(
        max_workers=1
    )

    print("reliability under the storm (identical fault plan for both backends):\n")
    header = (
        "| backend | availability | goodput (q/h) | query retries | "
        "completed / failed / shed | cost per query |"
    )
    print(header)
    print("|" + " --- |" * 6)
    rows = {}
    for name in backends:
        cell = report.cell("poisson-day", name, chaos="storm")
        chaos = cell.summary["chaos"]
        counts = chaos["outcome_counts"]
        rows[name] = (chaos, cell)
        print(
            f"| {name} | {chaos['availability']:.3f} | "
            f"{chaos['goodput_queries_per_hour']:.2f} | {chaos['retry_count']} | "
            f"{counts['completed']} / {counts['failed']} / {counts['shed']} | "
            f"${cell.cost_per_query:.6f} |"
        )

    fsd_chaos, fsd_cell = rows["fsd-serverless"]
    srv_chaos, srv_cell = rows["server-always-on"]
    assert srv_chaos["availability"] == 1.0, "the VM backend never touches FaaS/queues"
    assert fsd_chaos["availability"] < 1.0, "the storm must bite the serverless backend"

    print()
    print(
        "the storm only reaches the serverless substrate: the FSD backend "
        f"absorbed {fsd_chaos['fault_counts']} via {fsd_chaos['retry_count']} retries "
        f"and still completed {fsd_chaos['outcome_counts']['completed']} queries, "
        "while the always-on server saw zero faults"
    )
    print(
        "the price of that immunity is idle capacity: "
        f"${float(srv_cell.summary['cost_total']):.4f}/day always-on vs "
        f"${float(fsd_cell.summary['cost_total']):.4f}/day serverless "
        "(including the storm's billed-then-abandoned retry attempts)"
    )


if __name__ == "__main__":
    main()

"""Scenario library + campaign runner: one grid, many arrival shapes.

The paper's sporadic-workload argument (Section VI-C) is about *when*
queries arrive: warm-start hits, coalescing wins and autoscaling all depend
on the gaps between requests.  This example builds four differently-shaped
scenarios over the same daily volume --

1. a homogeneous Poisson baseline,
2. a diurnal curve (day/night intensity, thinned inhomogeneous Poisson),
3. a bursty two-state MMPP (quiet/burst regimes), and
4. a multi-tenant mixture (a diurnal "web" tenant plus a bursty "batch"
   tenant, merged onto one timeline with tenant provenance) --

then replays the grid (scenario x backend) through the serving layer with a
`Campaign` and prints the cross-cell pivot tables.

Run with::

    PYTHONPATH=src python examples/scenario_campaign.py
"""

from __future__ import annotations

from repro import (
    BurstyProcess,
    Campaign,
    CloudEnvironment,
    DiurnalProcess,
    EngineConfig,
    FSDServingBackend,
    GraphChallengeConfig,
    MixtureScenario,
    PoissonProcess,
    QueryWorkloadFactory,
    Scenario,
    ServerMode,
    ServerServingBackend,
    Variant,
    build_graph_challenge_model,
)

NEURONS = (64, 128)
LAYERS = 3
BATCH = 4
DAILY_SAMPLES = 30 * BATCH  # ~30 queries/day across the model sizes


def build_models():
    return {
        n: build_graph_challenge_model(
            GraphChallengeConfig(
                neurons=n, layers=LAYERS, nnz_per_row=8, num_communities=8, seed=7
            )
        )
        for n in NEURONS
    }


def main() -> None:
    models = build_models()

    shared = dict(daily_samples=DAILY_SAMPLES, batch_size=BATCH, neuron_counts=NEURONS)
    web = Scenario("web", DiurnalProcess(night_level=0.05), seed=21, **shared)
    batch_tenant = Scenario(
        "batch",
        BurstyProcess(burst_factor=15.0, mean_quiet_seconds=10800.0, mean_burst_seconds=900.0),
        seed=22,
        **shared,
    )
    scenarios = [
        Scenario("poisson", PoissonProcess(), seed=20, **shared),
        web,
        batch_tenant,
        MixtureScenario("web+batch", (web, batch_tenant)),
    ]

    def factory():
        return QueryWorkloadFactory(model_builder=lambda n: models[n])

    backends = {
        # detlint: allow[DET006] thread-executor example; process campaigns use the Spec factories
        "fsd-serial": lambda: FSDServingBackend(
            CloudEnvironment(),
            factory(),
            config_for=lambda n: EngineConfig(variant=Variant.SERIAL, workers=1),
        ),
        # detlint: allow[DET006] thread-executor example; process campaigns use the Spec factories
        "server-job": lambda: ServerServingBackend(
            CloudEnvironment(), ServerMode.JOB_SCOPED, factory()
        ),
    }

    mixture_trace = scenarios[-1].build()
    tenants = {t: len(qs) for t, qs in mixture_trace.queries_by_tenant().items()}
    print(
        f"mixture scenario interleaves {mixture_trace.num_queries} queries "
        f"from tenants {tenants} on one timeline"
    )

    report = Campaign(scenarios, backends).run()

    for metric in ("cost_per_query", "p95_latency_seconds", "cold_start_fraction"):
        print()
        print(report.render_markdown(metric))

    poisson = report.cell("poisson", "fsd-serial")
    bursty = report.cell("batch", "fsd-serial")
    print()
    print(
        "arrival shape moves the warm pool: poisson cold fraction "
        f"{poisson.cold_start_fraction:.2f} vs bursty {bursty.cold_start_fraction:.2f} "
        "(burst arrivals land inside the keepalive window)"
    )


if __name__ == "__main__":
    main()

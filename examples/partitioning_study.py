"""Partitioning study: how model partitioning shapes communication and cost.

Compares the three partitioning schemes shipped with the library (HGP-DNN
hypergraph partitioning, random partitioning, contiguous row blocks) on the
same model, both statically (rows that must cross worker boundaries, load
balance) and dynamically (bytes actually shipped, per-sample runtime and cost
of an FSD-Inf-Object run under each plan).  This is the Table III experiment
exposed as a library walk-through.

Run with::

    python examples/partitioning_study.py
"""

from __future__ import annotations

from repro import (
    CloudEnvironment,
    ContiguousPartitioner,
    EngineConfig,
    FSDInference,
    GraphChallengeConfig,
    HypergraphPartitioner,
    RandomPartitioner,
    Variant,
    build_graph_challenge_model,
    evaluate_plan,
    generate_input_batch,
)

WORKERS = 8


def main() -> None:
    config = GraphChallengeConfig(
        neurons=1024,
        layers=8,
        nnz_per_row=32,
        num_communities=32,
        community_link_fraction=0.95,
        seed=11,
    )
    model = build_graph_challenge_model(config)
    batch = generate_input_batch(model.num_neurons, samples=32, seed=5)
    expected = model.forward(batch)

    partitioners = [
        HypergraphPartitioner(seed=1),
        RandomPartitioner(seed=1),
        ContiguousPartitioner(),
    ]

    print(f"model: {model}\nworkers: {WORKERS}\n")
    header = (
        f"{'scheme':>12} | {'rows crossing':>13} | {'imbalance':>9} | "
        f"{'bytes shipped':>13} | {'per-sample ms':>13} | {'comm $':>10}"
    )
    print(header)
    print("-" * len(header))

    for partitioner in partitioners:
        plan = partitioner.partition(model, WORKERS)
        static = evaluate_plan(plan)

        cloud = CloudEnvironment()
        engine = FSDInference(cloud, EngineConfig(variant=Variant.OBJECT, workers=WORKERS))
        result = engine.infer(model, batch, plan)
        assert result.matches(expected), "every partitioning must give the same answer"

        print(
            f"{partitioner.name:>12} | {static.total_rows_transferred:>13,} | "
            f"{static.load_imbalance:>9.3f} | {result.metrics.total_bytes_sent:>13,} | "
            f"{result.per_sample_ms:>13.2f} | {result.cost.communication_cost:>10.6f}"
        )

    hgp = HypergraphPartitioner(seed=1)
    hgp_plan = hgp.partition(model, WORKERS)
    rp_plan = RandomPartitioner(seed=1).partition(model, WORKERS)
    reduction = rp_plan.total_rows_transferred() / max(1, hgp_plan.total_rows_transferred())
    print(
        f"\nHGP-DNN moves {reduction:.1f}x fewer activation rows between workers than "
        "random partitioning on this model"
    )
    if hgp.last_quality is not None:
        quality = hgp.last_quality
        print(
            f"HGP-DNN diagnostics: cut fraction {quality.cut_fraction:.3f}, "
            f"load imbalance {quality.load_imbalance:.3f}, "
            f"{quality.moves_applied} refinement moves over {quality.refinement_passes} passes"
        )


if __name__ == "__main__":
    main()

"""Sporadic inference workload: choosing a provisioning strategy for a day of queries.

Reproduces the scenario motivating the paper (Section VI-C): queries arrive
sporadically over 24 hours, mixing model sizes.  The example

1. generates a sporadic workload with a Poisson arrival process,
2. measures the per-query cost and latency of FSD-Inference (choosing the
   recommended variant per model size), of an always-on server fleet, and of
   job-scoped servers, and
3. prints the daily bill and typical query latency of each strategy.

Run with::

    python examples/sporadic_workload.py
"""

from __future__ import annotations

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDInference,
    GraphChallengeConfig,
    HypergraphPartitioner,
    OutOfMemoryError,
    ServerMode,
    Variant,
    WorkloadProfile,
    always_on_daily_cost,
    build_graph_challenge_model,
    generate_input_batch,
    generate_sporadic_workload,
    recommend_variant,
    run_server_query,
)

#: scaled-down model sizes standing in for the paper's 1024...65536 neurons.
NEURON_SIZES = (256, 512, 1024)
LAYERS = 8
SAMPLES_PER_QUERY = 32
DAILY_SAMPLES = 50 * SAMPLES_PER_QUERY  # ~50 queries over the day


def build_models():
    models = {}
    for neurons in NEURON_SIZES:
        config = GraphChallengeConfig(
            neurons=neurons, layers=LAYERS, nnz_per_row=max(8, neurons // 32), seed=7
        )
        models[neurons] = build_graph_challenge_model(config)
    return models


def measure_fsd(models):
    """Per-query cost/latency of FSD-Inference with the recommended variant."""
    measurements = {}
    for neurons, model in models.items():
        batch = generate_input_batch(neurons, samples=SAMPLES_PER_QUERY, seed=3)
        recommendation = recommend_variant(
            WorkloadProfile(
                model_bytes=model.nbytes(),
                workers=4,
                per_target_layer_bytes=64 * 1024,
                max_faas_memory_mb=10240,
            )
        )
        cloud = CloudEnvironment()
        variant = recommendation.variant
        workers = 1 if variant is Variant.SERIAL else 4
        engine = FSDInference(cloud, EngineConfig(variant=variant, workers=workers))
        try:
            if variant is Variant.SERIAL:
                result = engine.infer(model, batch)
            else:
                plan = engine.partition(model, HypergraphPartitioner(seed=1))
                result = engine.infer(model, batch, plan)
        except OutOfMemoryError:
            # Fall back to the distributed queue variant if serial cannot fit.
            engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=4))
            result = engine.infer(model, batch)
            variant = Variant.QUEUE
        measurements[neurons] = {
            "variant": variant.value,
            "cost": result.cost.total,
            "latency": result.latency_seconds,
        }
    return measurements


def measure_servers(models):
    """Per-query cost/latency of the job-scoped and always-on baselines."""
    measurements = {}
    for neurons, model in models.items():
        batch = generate_input_batch(neurons, samples=SAMPLES_PER_QUERY, seed=3)
        cloud = CloudEnvironment()
        job = run_server_query(cloud, model, batch, ServerMode.JOB_SCOPED)
        hot = run_server_query(cloud, model, batch, ServerMode.ALWAYS_ON_HOT)
        measurements[neurons] = {
            "job_cost": job.cost,
            "job_latency": job.latency_seconds,
            "always_on_latency": hot.latency_seconds,
        }
    return measurements


def main() -> None:
    models = build_models()
    workload = generate_sporadic_workload(
        DAILY_SAMPLES, batch_size=SAMPLES_PER_QUERY, neuron_counts=NEURON_SIZES, seed=13
    )
    print(
        f"sporadic workload: {workload.num_queries} queries / {workload.total_samples} samples "
        f"over 24 hours, model sizes {sorted(workload.samples_by_neurons())}"
    )

    fsd = measure_fsd(models)
    servers = measure_servers(models)
    always_on = always_on_daily_cost(CloudEnvironment(), instances=2, hours=24.0)

    queries_by_neurons = {n: len(qs) for n, qs in workload.queries_by_neurons().items()}
    fsd_daily = sum(fsd[n]["cost"] * count for n, count in queries_by_neurons.items())
    job_daily = sum(servers[n]["job_cost"] * count for n, count in queries_by_neurons.items())

    print("\nper-query behaviour:")
    header = f"{'N':>6} | {'FSD variant':>12} | {'FSD $':>10} | {'FSD s':>7} | {'JS $':>8} | {'JS s':>8} | {'AO-hot s':>8}"
    print(header)
    print("-" * len(header))
    for neurons in NEURON_SIZES:
        row = fsd[neurons]
        server = servers[neurons]
        print(
            f"{neurons:>6} | {row['variant']:>12} | {row['cost']:>10.6f} | {row['latency']:>7.2f} "
            f"| {server['job_cost']:>8.4f} | {server['job_latency']:>8.1f} | {server['always_on_latency']:>8.2f}"
        )

    print("\ndaily bill for the whole workload:")
    print(f"  FSD-Inference      : ${fsd_daily:.4f}")
    print(f"  Server-Job-Scoped  : ${job_daily:.4f}  (but each query waits minutes for provisioning)")
    print(f"  Server-Always-On   : ${always_on:.2f}  (2 x c5.12xlarge, billed around the clock)")


if __name__ == "__main__":
    main()

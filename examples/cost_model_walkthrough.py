"""Cost-model walkthrough: predict a bill, run the workload, compare.

Demonstrates the Section IV / Section VI-F workflow:

1. run one batch through FSD-Inf-Queue and FSD-Inf-Object,
2. predict each run's bill *from its captured metrics alone* using the
   analytical cost model (Equations 1-7),
3. compare the prediction against the simulated billing ledger (the stand-in
   for the AWS Cost & Usage report), and
4. ask the design-recommendation procedure which variant it would have picked.

Run with::

    python examples/cost_model_walkthrough.py
"""

from __future__ import annotations

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDInference,
    GraphChallengeConfig,
    HypergraphPartitioner,
    Variant,
    WorkloadProfile,
    build_graph_challenge_model,
    generate_input_batch,
    recommend_variant,
    validate_cost_model,
)

WORKERS = 6
WORKER_MEMORY_MB = 1024


def main() -> None:
    config = GraphChallengeConfig(neurons=1024, layers=10, nnz_per_row=32, seed=9)
    model = build_graph_challenge_model(config)
    batch = generate_input_batch(model.num_neurons, samples=48, seed=21)
    plan = HypergraphPartitioner(seed=2).partition(model, WORKERS)

    print(f"model: {model}")
    print(f"workers: {WORKERS}, worker memory: {WORKER_MEMORY_MB} MB\n")

    for variant in (Variant.QUEUE, Variant.OBJECT):
        cloud = CloudEnvironment()
        engine = FSDInference(
            cloud,
            EngineConfig(variant=variant, workers=WORKERS, worker_memory_mb=WORKER_MEMORY_MB),
        )
        result = engine.infer(model, batch, plan)
        report = validate_cost_model(result, worker_memory_mb=WORKER_MEMORY_MB)
        summary = report.summary()

        print(f"FSD-Inf-{variant.value.capitalize()}")
        print(
            f"  predicted : compute ${summary['predicted_compute']:.6f}  "
            f"communication ${summary['predicted_communication']:.6f}  "
            f"total ${summary['predicted_total']:.6f}"
        )
        print(
            f"  billed    : compute ${summary['actual_compute']:.6f}  "
            f"communication ${summary['actual_communication']:.6f}  "
            f"total ${summary['actual_total']:.6f}"
        )
        print(
            f"  error     : compute {report.compute_error:.2%}, "
            f"communication {report.communication_error:.2%}, total {report.total_error:.2%}"
        )
        print(
            f"  traffic   : {result.metrics.total_bytes_sent:,} bytes, "
            f"{result.metrics.total_publish_calls} publishes, "
            f"{result.metrics.total_put_calls} PUTs, "
            f"{result.metrics.total_get_calls} GETs, "
            f"{result.metrics.total_list_calls} LISTs\n"
        )

    recommendation = recommend_variant(
        WorkloadProfile(
            model_bytes=model.nbytes(),
            workers=WORKERS,
            per_target_layer_bytes=128 * 1024,
        )
    )
    print(f"design recommendation for this workload: {recommendation.variant.value}")
    print(f"  reason: {recommendation.reason}")


if __name__ == "__main__":
    main()

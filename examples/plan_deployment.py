"""Deployment planning: find the cheapest configuration that meets an SLO.

The paper's Section IV-C closes with a *decision procedure* -- use the
analytic cost model to pick the right serving variant for a workload.  After
the serving, policy and campaign layers, the real decision space is much
bigger: backend kind x coalescing window x hold cap x autoscaler limits.
This example hands that whole question to the deployment planner:

1. describe the workload -- a diurnal scenario (day/night arrival curve over
   one simulated day);
2. state the objective -- a 30 s p95 latency SLO;
3. declare the search space -- an FSD backend and a job-scoped server
   baseline, crossed with a grid of coalescing windows;

and let the planner answer.  It scores every candidate analytically from a
handful of probe executions (no replays), discards dominated configurations,
replays only the Pareto finalists through the campaign machinery, and
returns the (daily cost, p95 latency) frontier with SLO verdicts: the
cheapest compliant configuration wins.  Long coalescing windows are the
cheapest cells but blow the SLO; the winner trades some of that saving for
bounded latency.

Run with::

    PYTHONPATH=src python examples/plan_deployment.py
"""

from __future__ import annotations

from repro import (
    DeploymentPlanner,
    DiurnalProcess,
    FSDBackendSpec,
    Scenario,
    SearchSpace,
    ServerBackendSpec,
    SLOSpec,
)

NEURONS = (64, 128)
BATCH = 4
DAILY_SAMPLES = 30 * BATCH  # ~30 queries/day across the model sizes
P95_BOUND_SECONDS = 30.0


def main() -> None:
    scenario = Scenario(
        "diurnal",
        DiurnalProcess(night_level=0.05),
        seed=21,
        daily_samples=DAILY_SAMPLES,
        batch_size=BATCH,
        neuron_counts=NEURONS,
    )
    slo = SLOSpec(p95_latency_seconds=P95_BOUND_SECONDS)

    # Tiny models keep the example fast; backend-level knobs (variant,
    # workers, memory) are expressed as separate named backends.
    tiny = dict(layers=3, nnz_per_row=8)
    space = SearchSpace(
        backends={
            "fsd-serial": FSDBackendSpec(variant="serial", **tiny),
            "server-job": ServerBackendSpec(mode="job_scoped", **tiny),
        },
        knobs={"coalesce_window_seconds": (0.0, 15.0, 120.0, 600.0)},
    )

    planner = DeploymentPlanner(space, slo, refine_rounds=1)
    report = planner.plan(scenario)

    print(
        f"scored {len(report.candidates)} candidates analytically, replayed "
        f"{len(report.finalists)} Pareto finalists through the serving layer"
    )
    print()
    print(report.render_markdown())
    print()

    assert report.frontier_labels, "the planner must return a non-empty Pareto frontier"
    winner = report.winner
    assert winner is not None, "some configuration must meet the 30s p95 SLO"
    assert winner.slo.compliant and winner.simulated_p95 <= P95_BOUND_SECONDS

    cheapest = report.frontier[0]
    print(
        f"winner: {winner.label} -- simulated p95 "
        f"{winner.simulated_p95:.3f}s <= {P95_BOUND_SECONDS:.0f}s at "
        f"${winner.simulated_daily_cost(report.horizon_seconds):.6f}/day"
    )
    if cheapest.label != winner.label:
        saving = 1.0 - (
            cheapest.simulated_daily_cost(report.horizon_seconds)
            / winner.simulated_daily_cost(report.horizon_seconds)
        )
        print(
            f"the frontier's cheapest cell ({cheapest.label}) would save another "
            f"{saving:.0%} but its p95 of {cheapest.simulated_p95:.1f}s blows the SLO "
            "-- that is the cost of the latency bound"
        )


if __name__ == "__main__":
    main()

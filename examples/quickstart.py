"""Quickstart: run distributed serverless inference end to end.

Builds a small synthetic Graph Challenge network, partitions it with the
hypergraph partitioner, runs one batch through FSD-Inf-Queue on the simulated
serverless cloud, verifies the result against the single-process forward
pass, and prints the latency, cost and communication statistics of the run.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDInference,
    GraphChallengeConfig,
    HypergraphPartitioner,
    Variant,
    build_graph_challenge_model,
    generate_input_batch,
)


def main() -> None:
    # 1. A simulated cloud region: FaaS platform, pub/sub, queues, object
    #    storage, and one billing ledger shared by everything.
    cloud = CloudEnvironment()

    # 2. A synthetic sparse DNN and an inference batch (neurons x samples).
    config = GraphChallengeConfig(neurons=1024, layers=12, nnz_per_row=32, seed=7)
    model = build_graph_challenge_model(config)
    batch = generate_input_batch(model.num_neurons, samples=64, density=0.25, seed=11)
    print(f"model: {model}")
    print(f"batch: {batch.shape[1]} samples, {batch.nnz} active input values")

    # 3. Offline step: partition the model for 8 workers with HGP-DNN.
    engine = FSDInference(cloud, EngineConfig(variant=Variant.QUEUE, workers=8))
    plan = engine.partition(model, HypergraphPartitioner(seed=1))
    print(
        f"partition: {plan.num_workers} workers, "
        f"load imbalance {plan.load_imbalance():.3f}, "
        f"{plan.total_rows_transferred()} activation rows cross worker boundaries per batch"
    )

    # 4. Run the batch through FSD-Inf-Queue.
    result = engine.infer(model, batch, plan)

    # 5. Verify against the single-process ground truth.
    expected = model.forward(batch)
    assert result.matches(expected), "distributed result must match the ground truth"
    print("\ndistributed output matches the single-process forward pass")

    # 6. Inspect what the run cost and how it behaved.
    print(f"query latency           : {result.latency_seconds:.2f} s (virtual time)")
    print(f"per-sample runtime      : {result.per_sample_ms:.2f} ms")
    print(f"total cost              : ${result.cost.total:.6f}")
    print(f"  compute (FaaS)        : ${result.cost.compute_cost:.6f}")
    print(f"  communication         : ${result.cost.communication_cost:.6f}")
    print(f"bytes shipped via IPC   : {result.metrics.total_bytes_sent:,}")
    print(f"pub/sub publish calls   : {result.metrics.total_publish_calls}")
    print(f"queue poll calls        : {result.metrics.total_poll_calls}")
    print(f"launch tree fill time   : {result.metrics.launch_seconds:.3f} s")


if __name__ == "__main__":
    main()

"""Trace a served workload on the virtual timeline and export it.

Telemetry is opt-in (`ServingConfig(telemetry=TelemetryConfig())`) and
records *simulated* time only: spans for the serve, every query and every
dispatch attempt, cloud-side FaaS invocation spans, instant events for
channel operations, and counters/gauges (cumulative cost, queue depth,
warm-pool occupancy).  The walkthrough below serves one sporadic day
twice -- once with telemetry off, once on -- and shows the three things
the layer guarantees:

1. tracing never perturbs the replay (identical records either way),
2. a query's latency decomposes into an exact critical path
   (queue wait -> attempts and backoff -> result tail), and
3. the trace exports to Chrome trace-event JSON you can open in
   Perfetto or ``chrome://tracing`` (also via the ``repro-trace`` CLI).

Run with::

    PYTHONPATH=src python examples/trace_query.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro import (
    CloudEnvironment,
    EngineConfig,
    FSDServingBackend,
    GraphChallengeConfig,
    InferenceServer,
    QueryWorkloadFactory,
    ServingConfig,
    TelemetryConfig,
    Variant,
    build_graph_challenge_model,
    generate_sporadic_workload,
    write_chrome_trace,
)


def build_backend():
    model = build_graph_challenge_model(
        GraphChallengeConfig(
            neurons=64, layers=3, nnz_per_row=8, num_communities=8, seed=7
        )
    )
    return FSDServingBackend(
        CloudEnvironment(),
        QueryWorkloadFactory(model_builder=lambda neurons: model),
        config_for=lambda neurons: EngineConfig(variant=Variant.SERIAL, workers=1),
    )


def main() -> None:
    workload = generate_sporadic_workload(
        daily_samples=48, batch_size=4, neuron_counts=(64,), seed=13
    )

    plain = InferenceServer(build_backend()).serve(workload)
    traced = InferenceServer(
        build_backend(), ServingConfig(telemetry=TelemetryConfig())
    ).serve(workload)

    # 1. The observer effect is zero: tracing changed nothing simulated.
    assert traced.records == plain.records
    assert "telemetry" not in plain.summary()
    digest = traced.summary()["telemetry"]
    print(
        f"traced {len(traced.records)} queries: {digest['span_count']} spans, "
        f"{digest['event_count']} events -- and every simulated record is "
        "bit-identical to the untraced serve"
    )
    print("counter totals:")
    for name, total in digest["counters"].items():
        print(f"  {name:<24} {total:g}")

    # 2. Decompose the slowest query's latency on the virtual timeline.
    slowest = max(traced.records, key=lambda r: r.finished_at - r.arrival_time)
    print(
        f"\ncritical path of the slowest query (id {slowest.query_id}, "
        f"{slowest.finished_at - slowest.arrival_time:.3f}s arrival-to-finish):"
    )
    segments = traced.critical_path(slowest.query_id)
    assert segments, "a traced serve records a span for every query"
    for seg in segments:
        print(
            f"  {seg['duration']:10.3f}s  {seg['phase']:<10} "
            f"[{seg['start']:.3f}, {seg['end']:.3f}]"
        )
    total = segments[-1]["end"] - segments[0]["start"]
    assert abs(total - (slowest.finished_at - slowest.arrival_time)) < 1e-9

    # 3. Export for Perfetto / chrome://tracing (the `repro-trace` CLI
    #    renders the same trace from a saved Tracer.to_dict() JSON file).
    #    FSD_TRACE_DIR redirects the output (CI uploads it as an artifact).
    out_dir = Path(os.environ.get("FSD_TRACE_DIR") or tempfile.mkdtemp())
    out = out_dir / "serve.trace.json"
    write_chrome_trace(traced.telemetry.to_dict(), out)
    print(f"\nwrote Chrome trace to {out} -- open it in Perfetto to see the")
    print("serve/query/attempt nesting and the per-function invocation tracks")


if __name__ == "__main__":
    main()
